"""Self-healing process supervision: spawn, heartbeat, restart.

A :class:`Supervisor` owns a set of **named, forked worker processes**
and keeps them alive:

* **spawn** — each worker runs :func:`_worker_main`: announce on the
  (optional) trace spool, then loop ``task queue → entrypoint → result
  file``.  Workers are forked, so the entrypoint's heavy state (an
  engine, a partially built label store) is inherited by memory
  snapshot — including on *respawn*, which forks the parent's current
  state again.  The ``worker-spawn`` fault point fires per attempt.
* **heartbeat** — workers write a monotone counter into a per-worker
  heartbeat file: once per idle queue-poll tick, around every task, and
  whenever the entrypoint calls the ``heartbeat`` callable it is handed
  (the batch chunk body beats per query, the label chunk per vertex).
  The parent compares counter *values* on its own clock, so no
  cross-process clock comparison is needed.  A worker whose counter
  has not moved for ``stall_after_ms`` is presumed wedged: it is
  SIGKILLed and treated as dead.  The ``worker-heartbeat`` fault point
  fires before every touch — an injected fault silently skips the
  touch, which is exactly how chaos tests simulate a stall.
* **restart** — a death (exit, signal, stall, failed spawn) schedules a
  respawn after jittered exponential backoff
  (``min(base * 2**n, max) * (1 + jitter * U[0,1))``) behind a
  per-worker max-restarts-per-window circuit breaker
  (:class:`~repro.service.breaker.CircuitBreaker`): ``max_restarts``
  consecutive deaths open the breaker and the worker stays down until
  the ``restart_window_s`` backoff elapses.  A completed task closes
  the breaker, so only workers that die *without ever finishing work*
  trip it.
* **drain/stop** — :meth:`stop` drains gracefully (a ``None`` sentinel
  lets the worker loop exit cleanly, flushing its spool end marker),
  then escalates SIGTERM → SIGKILL for anything still alive after the
  grace period.

Results travel through **atomic result files** (pickle via ``tmp`` +
``os.replace``) rather than a shared queue: a worker SIGKILLed mid-write
can corrupt nothing the parent reads, and can never wedge a sibling on
a shared queue lock.  Every lifecycle event emits ``supervisor_*``
metrics, an :class:`~repro.supervise.incidents.Incident`, and (when a
recorder is live) a flight-recorder ``supervisor-<kind>`` record.

The task-lease layer on top — requeue work lost to a dead worker,
quarantine poison tasks — is :class:`repro.supervise.pool.
SupervisedPool`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, NamedTuple

from repro.observability.flight import get_flight_recorder
from repro.observability.metrics import get_registry
from repro.observability.propagation import WorkerSpool, reap_stale_spools
from repro.observability.tracing import NULL_SPAN, Span
from repro.service.breaker import OPEN, CircuitBreaker
from repro.service.faults import get_injector
from repro.supervise.incidents import IncidentLog, get_incident_log

#: Prefix of supervisor scratch directories (heartbeats + result files);
#: :func:`~repro.observability.propagation.reap_stale_spools` reaps
#: stale ones left behind by crashed parents.
SUPERVISOR_DIR_PREFIX = "qhl-supervisor-"

#: The worker entrypoint contract: ``entrypoint(payload, span,
#: heartbeat) -> result``.  ``span`` is the chunk's root span (or the
#: null span) and ``heartbeat`` must be called between units of work so
#: long chunks stay visibly alive.
Entrypoint = Callable[[Any, Span, Callable[[], None]], Any]


@dataclass(frozen=True)
class SupervisionConfig:
    """Tunables for one supervised fleet.

    ``stall_after_ms`` must comfortably exceed both ``heartbeat_ms``
    and the time between two ``heartbeat()`` calls inside the
    entrypoint, or healthy-but-busy workers get shot.
    """

    heartbeat_ms: float = 100.0
    stall_after_ms: float = 5000.0
    max_restarts: int = 3
    restart_window_s: float = 30.0
    backoff_base_s: float = 0.01
    backoff_max_s: float = 0.5
    backoff_jitter: float = 0.25
    max_task_retries: int = 2
    drain_grace_s: float = 2.0
    poll_interval_s: float = 0.01


class DeathEvent(NamedTuple):
    """One worker death observed by :meth:`Supervisor.poll`."""

    worker: str
    reason: str  # "exit" | "signal" | "stall" | "spawn-failed"
    detail: str
    pid: int | None


@dataclass
class WorkerState:
    """Parent-side bookkeeping for one named worker."""

    name: str
    breaker: CircuitBreaker
    process: multiprocessing.process.BaseProcess | None = None
    task_queue: Any = None
    pid: int | None = None
    pids: list[int] = field(default_factory=list)
    restarts: int = 0
    hb_path: str = ""
    hb_value: int = -1
    hb_changed_at: float = 0.0
    #: When a scheduled respawn becomes due (``None`` = not scheduled).
    respawn_at: float | None = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via tmp + rename; never partial."""
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _worker_main(
    name: str,
    entrypoint: Entrypoint,
    task_queue: Any,
    directory: str,
    hb_path: str,
    hb_interval_s: float,
    spool: WorkerSpool | None,
    label: str,
) -> None:
    """The supervised worker loop (runs in the forked child)."""
    injector = get_injector()
    if spool is not None:
        spool.announce()
    beat = 0

    def heartbeat() -> None:
        nonlocal beat
        try:
            injector.fire("worker-heartbeat", worker=name)
        except Exception:  # lint: allow=QHL002 an injected heartbeat fault simulates a silent stall: skip the touch, stay alive
            return
        beat += 1
        _atomic_write(hb_path, str(beat).encode("ascii"))

    heartbeat()
    while True:
        try:
            item = task_queue.get(timeout=hb_interval_s)
        except queue_mod.Empty:
            heartbeat()
            continue
        if item is None:  # graceful-drain sentinel
            break
        task_id, payload = item
        heartbeat()
        try:
            injector.fire("worker-task", worker=name, task=task_id)
            if spool is not None:
                with spool.observe(label) as span:
                    value = entrypoint(payload, span, heartbeat)
            else:
                value = entrypoint(payload, NULL_SPAN, heartbeat)
            outcome = (task_id, name, "ok", value)
        except BaseException as exc:  # lint: allow=QHL002 reported to the parent as a task-failure record, never swallowed
            outcome = (
                task_id, name, "error", (type(exc).__name__, str(exc)),
            )
        _atomic_write(
            os.path.join(directory, f"result-{task_id:08d}"),
            pickle.dumps(outcome),
        )
        heartbeat()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class Supervisor:
    """Owns, health-checks, and restarts a set of named workers.

    Single-threaded by design: all supervision happens inside
    :meth:`poll` ticks driven by the caller's loop (no background
    threads, so respawn-forks never race the parent's state).  The
    ``clock`` defaults to the fault injector's clock when one is
    installed (so chaos tests can jump time deterministically) and
    ``time.monotonic`` otherwise; backoff jitter uses a seeded RNG
    under an injected clock for replayable schedules.
    """

    def __init__(
        self,
        entrypoint: Entrypoint,
        config: SupervisionConfig | None = None,
        spool: WorkerSpool | None = None,
        label: str = "supervise.worker-chunk",
        trace_id: str | None = None,
        clock: Callable[[], float] | None = None,
        rng: random.Random | None = None,
    ) -> None:
        injector = get_injector()
        self.config = config if config is not None else SupervisionConfig()
        if clock is None:
            clock = (
                injector.clock
                if injector.enabled and injector.clock is not None
                else time.monotonic
            )
        self._clock = clock
        if rng is None:
            if injector.enabled and injector.clock is not None:
                # Deterministic jitter under injected clocks, so chaos
                # schedules replay identically run to run.
                rng = random.Random(0)
            else:
                rng = random.Random()
        self._rng = rng
        self._entrypoint = entrypoint
        self._spool = spool
        self._label = label
        self.trace_id = trace_id if trace_id is not None else (
            spool.trace_id if spool is not None else None
        )
        self._ctx = multiprocessing.get_context("fork")
        reap_stale_spools()
        self.directory = tempfile.mkdtemp(prefix=SUPERVISOR_DIR_PREFIX)
        self.incidents = IncidentLog()
        self.workers: dict[str, WorkerState] = {}
        self._consumed: set[str] = set()
        self._stopped = False

    # -- fleet definition ----------------------------------------------
    def add_worker(self, name: str) -> None:
        if name in self.workers:
            raise ValueError(f"duplicate worker name {name!r}")
        config = self.config
        state = WorkerState(
            name=name,
            breaker=CircuitBreaker(
                failure_threshold=config.max_restarts,
                reset_timeout=config.restart_window_s,
                clock=self._clock,
                on_transition=self._breaker_transition(name),
            ),
        )
        self.workers[name] = state

    def _breaker_transition(self, name: str) -> Callable[[str], None]:
        def on_transition(state: str) -> None:
            if state == OPEN:
                registry = get_registry()
                if registry.enabled:
                    registry.counter(
                        "supervisor_breaker_open_total",
                        {"worker": name},
                        help="restart circuit breakers tripped open",
                    ).inc()
                self._incident(
                    "breaker-open", name, self.workers[name].pid,
                    f"restart breaker open after "
                    f"{self.config.max_restarts} consecutive deaths",
                )
        return on_transition

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Spawn every registered worker."""
        for state in self.workers.values():
            self._spawn(state)
        self._set_workers_gauge()

    def _spawn(self, state: WorkerState) -> bool:
        state.respawn_at = None
        respawn = state.restarts > 0
        try:
            get_injector().fire(
                "worker-spawn", worker=state.name, restarts=state.restarts
            )
        except Exception as exc:  # lint: allow=QHL002 an injected spawn failure becomes a supervised death, not a crash
            self._record_death(
                state, "spawn-failed", f"{type(exc).__name__}: {exc}"
            )
            return False
        state.task_queue = self._ctx.Queue()
        state.hb_path = os.path.join(self.directory, f"hb-{state.name}")
        state.hb_value = -1
        state.hb_changed_at = self._clock()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                state.name,
                self._entrypoint,
                state.task_queue,
                self.directory,
                state.hb_path,
                self.config.heartbeat_ms / 1000.0,
                self._spool,
                self._label,
            ),
            daemon=True,
        )
        process.start()
        state.process = process
        state.pid = process.pid
        state.pids.append(int(process.pid or 0))
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "supervisor_spawns_total",
                {"worker": state.name},
                help="worker processes spawned (including respawns)",
            ).inc()
        self._incident(
            "spawn", state.name, state.pid,
            f"pid {state.pid} (attempt {state.restarts + 1})",
        )
        if respawn:
            if registry.enabled:
                registry.counter(
                    "supervisor_restarts_total",
                    {"worker": state.name},
                    help="workers respawned after a death",
                ).inc()
            self._incident(
                "restart", state.name, state.pid,
                f"respawned as pid {state.pid} after "
                f"{state.restarts} death(s)",
            )
        return True

    def _record_death(
        self, state: WorkerState, reason: str, detail: str
    ) -> DeathEvent:
        dead_pid = state.pid
        state.process = None
        state.task_queue = None
        state.pid = None
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "supervisor_deaths_total",
                {"worker": state.name, "reason": reason},
                help="worker deaths by cause",
            ).inc()
        self._incident(
            "death", state.name, dead_pid, f"{reason}: {detail}"
        )
        state.breaker.record_failure()
        state.restarts += 1
        config = self.config
        delay = min(
            config.backoff_base_s * (2 ** (state.restarts - 1)),
            config.backoff_max_s,
        ) * (1.0 + config.backoff_jitter * self._rng.random())
        state.respawn_at = self._clock() + delay
        return DeathEvent(state.name, reason, detail, dead_pid)

    def poll(self) -> list[DeathEvent]:
        """One supervision tick: detect deaths/stalls, run due respawns.

        Returns the deaths observed this tick so the task layer can
        requeue the dead workers' leases.
        """
        now = self._clock()
        deaths: list[DeathEvent] = []
        for state in self.workers.values():
            if state.process is not None:
                if not state.process.is_alive():
                    code = state.process.exitcode
                    state.process.join()
                    reason = "signal" if (code or 0) < 0 else "exit"
                    deaths.append(
                        self._record_death(
                            state, reason, f"exitcode {code}"
                        )
                    )
                    continue
                value = self._read_heartbeat(state.hb_path)
                if value != state.hb_value:
                    state.hb_value = value
                    state.hb_changed_at = now
                elif (
                    (now - state.hb_changed_at) * 1000.0
                    >= self.config.stall_after_ms
                ):
                    registry = get_registry()
                    if registry.enabled:
                        registry.counter(
                            "supervisor_heartbeat_stalls_total",
                            {"worker": state.name},
                            help="workers killed for a stalled heartbeat",
                        ).inc()
                    self._incident(
                        "stall", state.name, state.pid,
                        f"no heartbeat progress for "
                        f"{self.config.stall_after_ms:g} ms",
                    )
                    state.process.kill()
                    state.process.join()
                    deaths.append(
                        self._record_death(
                            state, "stall",
                            "heartbeat stalled; SIGKILLed",
                        )
                    )
            elif (
                state.respawn_at is not None
                and now >= state.respawn_at
                and state.breaker.allow()
            ):
                self._spawn(state)
        self._set_workers_gauge()
        return deaths

    @staticmethod
    def _read_heartbeat(path: str) -> int:
        try:
            with open(path, "rb") as handle:
                return int(handle.read() or b"-1")
        except (OSError, ValueError):
            return -1

    def _set_workers_gauge(self) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "supervisor_workers",
                help="live worker processes under supervision",
            ).set(
                sum(
                    1
                    for s in self.workers.values()
                    if s.process is not None and s.process.is_alive()
                )
            )

    # -- work dispatch -------------------------------------------------
    def submit(self, worker: str, task_id: int, payload: Any) -> None:
        """Queue one task on a specific (alive) worker."""
        state = self.workers[worker]
        if state.task_queue is None:
            raise ValueError(f"worker {worker!r} is not running")
        state.task_queue.put((task_id, payload))

    def harvest(self) -> list[tuple[int, str, str, Any]]:
        """New ``(task_id, worker, status, value)`` results on disk.

        Result files are written atomically by workers, so everything
        listed here is complete; unreadable files are skipped (their
        task will be requeued when the writer's death is detected).
        """
        out: list[tuple[int, str, str, Any]] = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return out
        for name in names:
            if not name.startswith("result-") or name in self._consumed:
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as handle:
                    payload = pickle.loads(handle.read())
            except (OSError, ValueError, EOFError, pickle.PickleError):
                continue
            self._consumed.add(name)
            out.append(payload)
        return out

    def idle_alive_workers(self, busy: set[str]) -> list[str]:
        """Names of running workers not currently holding a lease."""
        return [
            name
            for name, state in self.workers.items()
            if name not in busy
            and state.process is not None
            and state.process.is_alive()
        ]

    def note_success(self, worker: str) -> None:
        """A worker finished a task: close/reset its restart breaker."""
        self.workers[worker].breaker.record_success()

    def forgive(self, worker: str) -> None:
        """Reset a worker's restart breaker without a completed task.

        Used by the pool when a poison task is quarantined: the deaths
        were the task's fault, so the worker's respawn should not stay
        gated behind a breaker the task tripped.
        """
        self.workers[worker].breaker.record_success()

    def incident(
        self, kind: str, worker: str, pid: int | None, detail: str
    ) -> None:
        """Record a caller-originated incident (pool requeue/quarantine)."""
        self._incident(kind, worker, pid, detail)

    def can_make_progress(self) -> bool:
        """Whether any worker is alive or still restartable.

        ``False`` means the fleet is gone and no breaker will let a
        respawn through: the task layer should give up instead of
        spinning forever.
        """
        for state in self.workers.values():
            if state.process is not None and state.process.is_alive():
                return True
            if state.respawn_at is not None and (
                state.breaker.state != OPEN or state.breaker.allow()
            ):
                return True
        return False

    # -- shutdown ------------------------------------------------------
    def stop(self) -> None:
        """Graceful drain, then SIGTERM, then SIGKILL; reap the dir."""
        if self._stopped:
            return
        self._stopped = True
        grace = self.config.drain_grace_s
        for state in self.workers.values():
            if state.process is not None and state.task_queue is not None:
                try:
                    state.task_queue.put(None)
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + grace
        for state in self.workers.values():
            if state.process is None:
                continue
            state.process.join(max(0.0, deadline - time.monotonic()))
            if state.process.is_alive():
                state.process.terminate()  # escalate: SIGTERM
                state.process.join(0.5)
            if state.process.is_alive():
                state.process.kill()  # escalate: SIGKILL
                state.process.join()
            self._incident(
                "stop", state.name, state.pid,
                f"stopped (exitcode {state.process.exitcode})",
            )
            state.process = None
            state.task_queue = None
            state.pid = None
        self._set_workers_gauge()
        shutil.rmtree(self.directory, ignore_errors=True)

    # -- introspection -------------------------------------------------
    def status(self) -> dict[str, dict]:
        """Per-worker state snapshot (the ``supervise status`` shape)."""
        out: dict[str, dict] = {}
        for name, state in self.workers.items():
            if state.process is not None and state.process.is_alive():
                phase = "running"
            elif state.respawn_at is not None:
                phase = "backoff"
            else:
                phase = "down"
            out[name] = {
                "state": phase,
                "pid": state.pid,
                "pids": list(state.pids),
                "restarts": state.restarts,
                "breaker": state.breaker.state,
            }
        return out

    def pid_successions(self) -> dict[int, int]:
        """``{dead pid: respawned pid}`` across every worker's history."""
        successions: dict[int, int] = {}
        for state in self.workers.values():
            for old, new in zip(state.pids, state.pids[1:], strict=False):
                successions[old] = new
        return successions

    def _incident(
        self, kind: str, worker: str, pid: int | None, detail: str
    ) -> None:
        incident = self.incidents.new(
            kind, worker, pid, detail, trace_id=self.trace_id
        )
        sink = get_incident_log()
        if sink.enabled:
            sink.append(incident)
        recorder = get_flight_recorder()
        if recorder.enabled:
            recorder.record(
                engine="supervisor",
                source=int(pid or -1),
                target=0,
                budget=0.0,
                outcome=f"supervisor-{kind}",
                seconds=0.0,
                trace_id=self.trace_id,
                error=f"{worker}: {detail}",
            )


def annotate_succession(parent: Span, supervisor: Supervisor) -> None:
    """Join each ``worker.truncated`` span to its respawned successor.

    Run after :func:`~repro.observability.propagation.stitch`: a
    truncated span whose pid was respawned gains a ``respawned_as``
    counter carrying the successor pid, so the trace shows the death
    *and* the recovery as one storyline.
    """
    successions = supervisor.pid_successions()
    for child in parent.children:
        if child.name != "worker.truncated":
            continue
        pid = int(child.counters.get("pid", 0))
        if pid in successions:
            child.set("respawned_as", successions[pid])
