"""Shared query/result/statistics types used by QHL and every baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.exceptions import QueryError


class CSPQuery(NamedTuple):
    """A constrained shortest path query (paper Definition 3).

    Find the s-t path minimising total weight subject to total cost
    ``<= budget``.
    """

    source: int
    target: int
    budget: float

    def validated(self, num_vertices: int) -> "CSPQuery":
        """Return self after sanity checks, raising :class:`QueryError`."""
        if not 0 <= self.source < num_vertices:
            raise QueryError(f"source {self.source} out of range")
        if not 0 <= self.target < num_vertices:
            raise QueryError(f"target {self.target} out of range")
        if self.budget < 0:
            raise QueryError(f"budget must be non-negative, got {self.budget}")
        return self


@dataclass
class QueryStats:
    """Per-query operation counters (paper Figures 7 and 8).

    ``hoplinks`` and ``concatenations`` are the two series the paper
    plots; ``label_lookups`` counts skyline-set fetches; ``candidates``
    is |H| — how many candidate separators the pruning step produced
    (2..4 for QHL, 1 for CSP-2Hop).
    """

    hoplinks: int = 0
    concatenations: int = 0
    label_lookups: int = 0
    candidates: int = 0
    seconds: float = 0.0


@dataclass
class QueryResult:
    """Outcome of a CSP query.

    ``feasible`` is False when no s-t path meets the budget; ``weight`` /
    ``cost`` are then ``None``.  ``path`` is filled only when the engine
    was built with path storage and asked to retrieve paths.  ``engine``
    names the engine that produced the answer when the query went
    through the serving layer (``repro.service``) — useful to tell a
    fast QHL answer from a degraded Dijkstra one.
    """

    query: CSPQuery
    weight: float | None = None
    cost: float | None = None
    path: list[int] | None = None
    stats: QueryStats = field(default_factory=QueryStats)
    engine: str | None = None

    @property
    def feasible(self) -> bool:
        """Whether a path within budget exists."""
        return self.weight is not None

    def pair(self) -> tuple[float, float] | None:
        """The ``(weight, cost)`` pair, or ``None`` when infeasible."""
        if self.weight is None or self.cost is None:
            return None
        return (self.weight, self.cost)
