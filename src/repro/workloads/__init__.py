"""Workload generation: the paper's Q/R query sets, Q_index sampling,
and the weak-correlation (traffic-signal) metric variant."""

from repro.workloads.correlation import (
    signal_vertices,
    traffic_signal_network,
)
from repro.workloads.queries import (
    RATIOS,
    QuerySet,
    distance_band,
    generate_distance_sets,
    generate_ratio_sets,
)
from repro.workloads.io import read_query_sets, write_query_sets
from repro.workloads.sampling import (
    index_queries_from_sets,
    random_index_queries,
)

__all__ = [
    "RATIOS",
    "QuerySet",
    "distance_band",
    "generate_distance_sets",
    "generate_ratio_sets",
    "index_queries_from_sets",
    "random_index_queries",
    "read_query_sets",
    "signal_vertices",
    "traffic_signal_network",
    "write_query_sets",
]
