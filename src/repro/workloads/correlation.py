"""Weakly-correlated metrics: the traffic-signal scenario (paper §5.2.1,
Figure 9).

The paper simulates "number of traversed traffic signals vs. travel
distance": vertices of high degree become signal positions, edges incident
to a signal get weight 1 and all others weight 0, while the cost stays the
road length.

One deviation, documented here because it is load-bearing: the paper's
weight 0 contradicts its own Definition 1 (``w ∈ R+``) and breaks
Lemma 4's strict-domination argument.  We keep weights positive by scaling
— signal edges get ``signal_weight`` (default 1000) and others 1 — so a
path's weight is ``~signal_weight × (#signals) + (#hops)``: the signal
count still dominates the ordering, ties break by hop count, and every
index invariant stays intact.
"""

from __future__ import annotations

from repro.exceptions import InvalidGraphError
from repro.graph.network import RoadNetwork


def signal_vertices(
    network: RoadNetwork,
    degree_threshold: int | None = None,
    top_fraction: float | None = None,
) -> set[int]:
    """Choose traffic-signal vertices.

    Either by absolute degree (the paper uses ``degree >= 8`` on NY) or,
    better suited to scaled-down networks, the ``top_fraction`` of
    vertices by degree.  Exactly one selector must be given.
    """
    if (degree_threshold is None) == (top_fraction is None):
        raise InvalidGraphError(
            "give exactly one of degree_threshold / top_fraction"
        )
    if degree_threshold is not None:
        return {
            v for v in network.vertices()
            if network.degree(v) >= degree_threshold
        }
    if not 0 < top_fraction <= 1:
        raise InvalidGraphError(
            f"top_fraction must be in (0, 1], got {top_fraction}"
        )
    count = max(1, round(network.num_vertices * top_fraction))
    ranked = sorted(
        network.vertices(), key=lambda v: (-network.degree(v), v)
    )
    return set(ranked[:count])


def traffic_signal_network(
    network: RoadNetwork,
    degree_threshold: int | None = None,
    top_fraction: float | None = 0.15,
    signal_weight: int = 1000,
) -> tuple[RoadNetwork, set[int]]:
    """The weak-correlation variant of a network.

    Returns ``(new_network, signals)``: costs are unchanged (road
    lengths); the weight of an edge is ``signal_weight`` when it touches a
    signal vertex and 1 otherwise.
    """
    if degree_threshold is not None:
        top_fraction = None
    signals = signal_vertices(
        network,
        degree_threshold=degree_threshold,
        top_fraction=top_fraction,
    )
    weights = [
        signal_weight if (u in signals or v in signals) else 1
        for u, v, _w, _c in network.edges()
    ]
    return network.with_metrics(weights=weights), signals
