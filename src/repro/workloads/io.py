"""Query-set file format.

Benchmark workloads should be reproducible artefacts: generate once,
run everywhere.  Format (one file, many sets)::

    # comment
    qset Q1 1000
    q <source> <target> <budget> <distance>
    ...

``distance`` is the query pair's shortest cost distance ``d`` recorded
at generation time (needed to derive R sets and to verify bands).
"""

from __future__ import annotations

import os
from typing import TextIO

from repro.exceptions import InvalidGraphError
from repro.types import CSPQuery
from repro.workloads.queries import QuerySet


def write_query_sets(sets: dict[str, QuerySet] | list[QuerySet],
                     path: str) -> None:
    """Write query sets to ``path`` (creates parent directories)."""
    if isinstance(sets, dict):
        ordered = [sets[name] for name in sets]
    else:
        ordered = list(sets)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as f:
        f.write("# repro query sets: q source target budget distance\n")
        for query_set in ordered:
            f.write(f"qset {query_set.name} {len(query_set)}\n")
            for query, d in zip(
                query_set.queries, query_set.distances, strict=True
            ):
                f.write(
                    f"q {query.source} {query.target} "
                    f"{_num(query.budget)} {_num(d)}\n"
                )


def read_query_sets(path: str) -> dict[str, QuerySet]:
    """Read query sets written by :func:`write_query_sets`."""
    with open(path) as f:
        return _parse(f)


def _parse(stream: TextIO) -> dict[str, QuerySet]:
    sets: dict[str, QuerySet] = {}
    current: QuerySet | None = None
    declared = 0
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "qset":
            if len(parts) != 3:
                raise InvalidGraphError(
                    f"line {lineno}: malformed qset header {line!r}"
                )
            _check_declared(current, declared, lineno)
            current = QuerySet(parts[1], [], [])
            declared = int(parts[2])
            sets[parts[1]] = current
        elif parts[0] == "q":
            if current is None:
                raise InvalidGraphError(
                    f"line {lineno}: query before any 'qset' header"
                )
            if len(parts) != 5:
                raise InvalidGraphError(
                    f"line {lineno}: malformed query line {line!r}"
                )
            current.queries.append(
                CSPQuery(int(parts[1]), int(parts[2]), float(parts[3]))
            )
            current.distances.append(float(parts[4]))
        else:
            raise InvalidGraphError(
                f"line {lineno}: unknown record type {parts[0]!r}"
            )
    _check_declared(current, declared, lineno="end")
    return sets


def _check_declared(current: QuerySet | None, declared: int, lineno) -> None:
    if current is not None and len(current) != declared:
        raise InvalidGraphError(
            f"query set {current.name!r} declares {declared} queries, "
            f"file has {len(current)} (at line {lineno})"
        )


def _num(x: float) -> str:
    if isinstance(x, float) and x.is_integer():
        return str(int(x))
    return str(x)
