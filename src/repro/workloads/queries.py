"""Query-set generation following the paper's experimental setup (§5.1).

Two families of query sets over a network with diameter ``d_max``:

* **Distance bands** ``Q1..Q5`` — set ``Q_i`` holds random queries whose
  shortest (cost-metric) distance ``d`` lies in
  ``[d_max / 2^(6-i), d_max / 2^(5-i)]``; each query's budget is
  ``C = 0.5 * C_max + 0.5 * C_min`` with ``C_max = d_max / 2^(5-i)`` and
  ``C_min = d`` (below ``d`` there is no feasible answer).
* **Budget ratios** ``R1..R5`` — the same (s, t) pairs as ``Q3``, with
  ``C = r * C_max + (1 - r) * C_min``, ``r = 0.1, 0.3, 0.5, 0.7, 0.9``
  and ``C_max = d_max / 4``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import QueryError
from repro.graph.algorithms import dijkstra, estimate_diameter
from repro.graph.network import RoadNetwork
from repro.types import CSPQuery

RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)
"""The paper's r values: ``(2i - 1) * 0.1`` for ``i = 1..5``."""


@dataclass
class QuerySet:
    """A named set of queries plus each query's shortest distance ``d``."""

    name: str
    queries: list[CSPQuery]
    distances: list[float]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


def distance_band(i: int, d_max: float) -> tuple[float, float]:
    """The shortest-distance interval of query set ``Q_i`` (1-based)."""
    if not 1 <= i <= 5:
        raise QueryError(f"query set index must be 1..5, got {i}")
    return d_max / 2 ** (6 - i), d_max / 2 ** (5 - i)


def generate_distance_sets(
    network: RoadNetwork,
    size: int = 1000,
    d_max: float | None = None,
    seed: int = 0,
    max_source_samples: int | None = None,
) -> dict[str, QuerySet]:
    """Generate ``Q1..Q5`` by rejection sampling random sources.

    For every sampled source one Dijkstra sweep buckets all targets by
    band, so filling five sets costs a handful of sweeps even on sets of
    paper size.

    Raises
    ------
    QueryError
        If some band cannot be filled (e.g. the network is too small to
        contain pairs at ``~d_max/2`` apart) after the sampling budget.
    """
    if d_max is None:
        d_max = estimate_diameter(network)
    rng = random.Random(seed)
    n = network.num_vertices
    bands = [distance_band(i, d_max) for i in range(1, 6)]
    sets: list[tuple[list[CSPQuery], list[float]]] = [
        ([], []) for _ in range(5)
    ]
    budget = max_source_samples if max_source_samples is not None else (
        40 + 60 * size // max(1, n)
    ) * 5

    attempts = 0
    while attempts < budget and any(len(q) < size for q, _ in sets):
        attempts += 1
        s = rng.randrange(n)
        dist = dijkstra(network, s, metric="cost")
        # Bucket the targets once, then draw without replacement per band.
        buckets: list[list[int]] = [[] for _ in range(5)]
        for t, d in enumerate(dist):
            if t == s or d == float("inf"):
                continue
            for b, (lo, hi) in enumerate(bands):
                if lo <= d <= hi:
                    buckets[b].append(t)
                    break
        for b, bucket in enumerate(buckets):
            queries, distances = sets[b]
            if len(queries) >= size or not bucket:
                continue
            take = min(size - len(queries), max(1, len(bucket) // 4))
            for t in rng.sample(bucket, min(take, len(bucket))):
                d = dist[t]
                c_max = bands[b][1]
                budget_c = 0.5 * c_max + 0.5 * d
                queries.append(CSPQuery(s, t, budget_c))
                distances.append(d)

    result = {}
    for i, (queries, distances) in enumerate(sets, start=1):
        if len(queries) < size:
            raise QueryError(
                f"could not fill Q{i}: found {len(queries)} of {size} "
                f"queries in band {bands[i - 1]} — the network may be too "
                "small for this band; lower `size` or use a larger network"
            )
        result[f"Q{i}"] = QuerySet(f"Q{i}", queries[:size], distances[:size])
    return result


def generate_ratio_sets(
    q3: QuerySet, d_max: float, ratios: tuple[float, ...] = RATIOS
) -> dict[float, QuerySet]:
    """Generate the ``R`` sets from ``Q3``'s pairs (paper §5.1).

    Returns a dict keyed by the ratio ``r``.
    """
    c_max = d_max / 4
    result = {}
    for r in ratios:
        queries = [
            CSPQuery(q.source, q.target, r * c_max + (1 - r) * d)
            for q, d in zip(q3.queries, q3.distances, strict=True)
        ]
        result[r] = QuerySet(f"R(r={r})", queries, list(q3.distances))
    return result
