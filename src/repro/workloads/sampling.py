"""Sampling ``Q_index``, the workload that drives pruning-condition
construction (paper §4.2).

The paper generates ``Q_index`` "by uniformly sampling from past
workloads"; this module offers both that (sampling from existing query
sets) and plain uniform vertex-pair sampling for cold starts.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.engine import random_index_queries
from repro.types import CSPQuery
from repro.workloads.queries import QuerySet

__all__ = [
    "random_index_queries",
    "index_queries_from_sets",
]


def index_queries_from_sets(
    sets: Iterable[QuerySet] | Sequence[QuerySet],
    count: int,
    seed: int = 0,
) -> list[CSPQuery]:
    """Uniformly sample ``count`` queries from past workloads.

    Samples with replacement from the union of the given query sets —
    duplicates are harmless (condition construction deduplicates by
    (separator, end-vertex) anyway).
    """
    pool: list[CSPQuery] = []
    for query_set in sets:
        pool.extend(query_set.queries)
    if not pool:
        return []
    rng = random.Random(seed)
    return [pool[rng.randrange(len(pool))] for _ in range(count)]
