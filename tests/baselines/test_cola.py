"""Unit tests for the COLA-like partition/overlay baseline."""

import random

import pytest

from repro.baselines import COLAEngine, constrained_dijkstra, partition_network
from repro.datasets import paper_figure1_network, v
from repro.graph import grid_network, random_connected_network


class TestPartitioning:
    def test_every_vertex_assigned(self):
        g = grid_network(6, 6, seed=1)
        part = partition_network(g, 4, seed=0)
        assert len(part) == 36
        assert all(0 <= p < 4 for p in part)

    def test_number_of_parts_capped_by_vertices(self):
        g = random_connected_network(3, 0, seed=0)
        part = partition_network(g, 10, seed=0)
        assert len(set(part)) <= 3

    def test_single_part(self):
        g = grid_network(4, 4, seed=1)
        assert set(partition_network(g, 1, seed=0)) == {0}

    def test_deterministic(self):
        g = grid_network(5, 5, seed=2)
        assert partition_network(g, 3, seed=7) == partition_network(
            g, 3, seed=7
        )

    def test_parts_reasonably_balanced(self):
        g = grid_network(8, 8, seed=3)
        part = partition_network(g, 4, seed=1)
        sizes = [part.count(p) for p in range(4)]
        assert min(sizes) >= 4  # BFS growth keeps blobs non-degenerate

    def test_invalid_part_count_rejected(self):
        from repro.exceptions import IndexBuildError

        g = grid_network(4, 4, seed=0)
        with pytest.raises(IndexBuildError):
            partition_network(g, 0)


class TestCOLAQueries:
    @pytest.fixture(scope="class")
    def paper_cola(self):
        g = paper_figure1_network()
        return g, COLAEngine(g, num_parts=3, seed=0)

    def test_paper_example2(self, paper_cola):
        _g, engine = paper_cola
        assert engine.query(v(8), v(4), 13).pair() == (17, 13)

    def test_source_equals_target(self, paper_cola):
        _g, engine = paper_cola
        assert engine.query(v(2), v(2), 0).pair() == (0, 0)

    def test_infeasible(self, paper_cola):
        _g, engine = paper_cola
        assert not engine.query(v(8), v(4), 11).feasible

    @pytest.mark.parametrize("num_parts", [1, 2, 4, 8])
    def test_agreement_across_partition_counts(self, num_parts):
        g = random_connected_network(30, 25, seed=1)
        engine = COLAEngine(g, num_parts=num_parts, seed=1)
        rng = random.Random(num_parts)
        for _ in range(25):
            s, t = rng.randrange(30), rng.randrange(30)
            budget = rng.randint(1, 250)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            assert engine.query(s, t, budget).pair() == want.pair(), (
                s, t, budget
            )

    def test_agreement_on_grid(self):
        g = grid_network(5, 5, seed=4)
        engine = COLAEngine(g, num_parts=4, seed=2)
        rng = random.Random(9)
        for _ in range(25):
            s, t = rng.randrange(25), rng.randrange(25)
            budget = rng.randint(5, 200)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            assert engine.query(s, t, budget).pair() == want.pair()

    def test_index_entries_positive(self, paper_cola):
        _g, engine = paper_cola
        assert engine.index_entries() > 0

    def test_build_seconds_recorded(self, paper_cola):
        _g, engine = paper_cola
        assert engine.build_seconds > 0
