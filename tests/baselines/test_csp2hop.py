"""Unit tests for the CSP-2Hop baseline (Algorithm 2)."""

import random

import pytest

from repro.baselines import CSP2HopEngine, constrained_dijkstra
from repro.datasets import paper_figure1_network, v
from repro.exceptions import QueryError
from repro.hierarchy import build_tree_decomposition
from repro.labeling import build_labels


@pytest.fixture(scope="module")
def paper_engine():
    g = paper_figure1_network()
    tree = build_tree_decomposition(g)
    labels = build_labels(tree)
    return g, CSP2HopEngine(tree, labels)


class TestPaperExamples:
    def test_example2_answer(self, paper_engine):
        _g, engine = paper_engine
        result = engine.query(v(8), v(4), 13)
        assert result.pair() == (17, 13)

    def test_example2_path(self, paper_engine):
        _g, engine = paper_engine
        result = engine.query(v(8), v(4), 13, want_path=True)
        assert result.path == [v(8), v(2), v(9), v(10), v(5), v(4)]

    def test_example10_hoplinks_are_lca_bag(self, paper_engine):
        # CSP-2Hop uses X(v10) = {v10, v11, v12, v13}: 4 hoplinks.
        _g, engine = paper_engine
        result = engine.query(v(8), v(4), 13)
        assert result.stats.hoplinks == 4

    def test_example10_concatenation_count(self, paper_engine):
        # The paper claims 4+4+2+6 = 16 concatenations, with |P_v8v12|=2.
        # But its own stated sets force (9,8)+(9,4)+(1,2) = (19,14) into
        # P_v8v12 (P_v8v10, P_v10v4 and P_v4v12={(1,2)} are all given),
        # so |P_v8v12| = 3 and the true total is 4+4+3+6 = 17 — the
        # paper's "2" looks like an off-by-one in the running example.
        _g, engine = paper_engine
        result = engine.query(v(8), v(4), 13)
        assert result.stats.concatenations == 17

    def test_ancestor_descendant_uses_label_directly(self, paper_engine):
        _g, engine = paper_engine
        result = engine.query(v(8), v(13), 12)
        assert result.pair() == (11, 12)
        assert result.stats.hoplinks == 0
        assert result.stats.concatenations == 0

    def test_descendant_ancestor_symmetric(self, paper_engine):
        _g, engine = paper_engine
        a = engine.query(v(8), v(13), 12)
        b = engine.query(v(13), v(8), 12)
        assert a.pair() == b.pair()

    def test_budget_sweeps_the_skyline(self, paper_engine):
        # P_v8v4 = {(18,12), (17,13), (16,18)}.
        _g, engine = paper_engine
        assert not engine.query(v(8), v(4), 11).feasible
        assert engine.query(v(8), v(4), 12).pair() == (18, 12)
        assert engine.query(v(8), v(4), 13).pair() == (17, 13)
        assert engine.query(v(8), v(4), 17).pair() == (17, 13)
        assert engine.query(v(8), v(4), 18).pair() == (16, 18)
        assert engine.query(v(8), v(4), 10**6).pair() == (16, 18)

    def test_source_equals_target(self, paper_engine):
        _g, engine = paper_engine
        assert engine.query(v(5), v(5), 0).pair() == (0, 0)

    def test_invalid_query_rejected(self, paper_engine):
        _g, engine = paper_engine
        with pytest.raises(QueryError):
            engine.query(0, 99, 5)


class TestGroundTruthAgreement:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_networks(self, seed):
        from repro.graph import random_connected_network

        g = random_connected_network(30, 25, seed=seed)
        tree = build_tree_decomposition(g)
        engine = CSP2HopEngine(tree, build_labels(tree))
        rng = random.Random(seed)
        for _ in range(40):
            s, t = rng.randrange(30), rng.randrange(30)
            budget = rng.randint(1, 250)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            assert engine.query(s, t, budget).pair() == want.pair()

    def test_retrieved_paths_are_real(self, paper_engine):
        g, engine = paper_engine
        rng = random.Random(5)
        for _ in range(30):
            s, t = rng.randrange(13), rng.randrange(13)
            result = engine.query(s, t, rng.randint(1, 60), want_path=True)
            if result.feasible:
                assert result.path[0] == s and result.path[-1] == t
                assert g.path_metrics(result.path) == result.pair()
