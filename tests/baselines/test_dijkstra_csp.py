"""Unit tests for the index-free constrained Dijkstra baselines."""

import pytest

from repro.datasets import paper_figure1_network, v
from repro.exceptions import QueryError
from repro.graph import RoadNetwork, random_connected_network
from repro.baselines import (
    constrained_dijkstra,
    multi_adjacency,
    multi_constrained_dijkstra,
)


def diamond():
    """Two s-t routes: fast/expensive (w=2,c=10) and slow/cheap (w=10,c=2)."""
    g = RoadNetwork(4)
    g.add_edge(0, 1, weight=1, cost=5)
    g.add_edge(1, 3, weight=1, cost=5)
    g.add_edge(0, 2, weight=5, cost=1)
    g.add_edge(2, 3, weight=5, cost=1)
    return g


class TestConstrainedDijkstra:
    def test_picks_fast_route_with_big_budget(self):
        result = constrained_dijkstra(diamond(), 0, 3, budget=100)
        assert result.pair() == (2, 10)
        assert result.path == [0, 1, 3]

    def test_budget_forces_cheap_route(self):
        result = constrained_dijkstra(diamond(), 0, 3, budget=5)
        assert result.pair() == (10, 2)
        assert result.path == [0, 2, 3]

    def test_budget_exactly_at_cost(self):
        result = constrained_dijkstra(diamond(), 0, 3, budget=10)
        assert result.pair() == (2, 10)

    def test_infeasible_budget(self):
        result = constrained_dijkstra(diamond(), 0, 3, budget=1)
        assert not result.feasible
        assert result.pair() is None

    def test_source_equals_target(self):
        result = constrained_dijkstra(diamond(), 2, 2, budget=0)
        assert result.pair() == (0, 0)
        assert result.path == [2]

    def test_weight_ties_resolved_to_min_cost(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=2, cost=9)
        g.add_edge(0, 2, weight=1, cost=4)
        g.add_edge(2, 1, weight=1, cost=4)
        # Both routes weigh 2; the cheaper (cost 8) must win.
        assert constrained_dijkstra(g, 0, 1, budget=20).pair() == (2, 8)

    def test_bad_vertex_rejected(self):
        with pytest.raises(QueryError):
            constrained_dijkstra(diamond(), 0, 9, budget=5)

    def test_negative_budget_rejected(self):
        with pytest.raises(QueryError):
            constrained_dijkstra(diamond(), 0, 3, budget=-1)

    def test_want_path_false_skips_path(self):
        result = constrained_dijkstra(diamond(), 0, 3, 100, want_path=False)
        assert result.path is None
        assert result.feasible

    def test_paper_example2(self):
        g = paper_figure1_network()
        result = constrained_dijkstra(g, v(8), v(4), budget=13)
        assert result.pair() == (17, 13)
        assert result.path == [v(8), v(2), v(9), v(10), v(5), v(4)]

    def test_path_metrics_match_reported_pair(self):
        g = random_connected_network(25, 20, seed=4)
        import random

        rng = random.Random(1)
        for _ in range(25):
            s, t = rng.randrange(25), rng.randrange(25)
            result = constrained_dijkstra(g, s, t, budget=rng.randint(1, 200))
            if result.feasible and s != t:
                assert g.path_metrics(result.path) == result.pair()


class TestMultiConstrained:
    def test_reduces_to_single_constraint(self):
        g = diamond()
        got = multi_constrained_dijkstra(g, 0, 3, budgets=(5,))
        assert got == (10, (2,))

    def test_second_budget_bites(self):
        g = diamond()
        # Second metric = number of hops (1 per edge).
        hops = [1] * g.num_edges
        # Fast route feasible on cost but both routes have 2 hops; a hop
        # budget of 1 kills everything.
        assert multi_constrained_dijkstra(
            g, 0, 3, budgets=(100, 1), extra_costs=[hops]
        ) is None

    def test_second_budget_selects_route(self):
        g = RoadNetwork(4)
        g.add_edge(0, 1, weight=1, cost=1)   # edge 0: toll road
        g.add_edge(1, 3, weight=1, cost=1)   # edge 1: toll road
        g.add_edge(0, 2, weight=5, cost=1)   # edge 2: free
        g.add_edge(2, 3, weight=5, cost=1)   # edge 3: free
        tolls = [10, 10, 0.5, 0.5]
        got = multi_constrained_dijkstra(
            g, 0, 3, budgets=(10, 5), extra_costs=[tolls]
        )
        assert got == (10, (2, 1.0))

    def test_source_equals_target(self):
        got = multi_constrained_dijkstra(diamond(), 1, 1, budgets=(5, 5),
                                         extra_costs=[[1] * 4])
        assert got == (0, (0, 0))

    def test_budget_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            multi_constrained_dijkstra(diamond(), 0, 3, budgets=(5, 5))

    def test_multi_adjacency_layout(self):
        g = diamond()
        adj = multi_adjacency(g, [[7, 8, 9, 10]])
        assert (1, 1, (5, 7)) in adj[0]
        assert (0, 1, (5, 7)) in adj[1]
