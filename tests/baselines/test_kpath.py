"""Unit tests for the k-shortest-path based CSP baseline."""

import random

import pytest

from repro.baselines import constrained_dijkstra, ksp_csp, yen_paths
from repro.datasets import paper_figure1_network, v
from repro.exceptions import QueryError
from repro.graph import RoadNetwork, random_connected_network


class TestYenPaths:
    def test_weights_non_decreasing(self):
        g = paper_figure1_network()
        weights = [w for w, _c, _p in yen_paths(g, v(8), v(4), 20)]
        assert weights == sorted(weights)

    def test_paths_are_simple(self):
        g = paper_figure1_network()
        for _w, _c, path in yen_paths(g, v(8), v(4), 20):
            assert len(path) == len(set(path))

    def test_paths_are_distinct(self):
        g = paper_figure1_network()
        paths = [tuple(p) for _w, _c, p in yen_paths(g, v(8), v(4), 20)]
        assert len(paths) == len(set(paths))

    def test_path_metrics_consistent(self):
        g = paper_figure1_network()
        for w, c, path in yen_paths(g, v(8), v(4), 10):
            assert g.path_metrics(path) == (w, c)

    def test_first_path_is_weight_optimal(self):
        g = paper_figure1_network()
        first = next(yen_paths(g, v(8), v(4), 5))
        assert first[0] == 16  # min-weight path in P_v8v4 is (16, 18)

    def test_disconnected_yields_nothing(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=1)
        assert list(yen_paths(g, 0, 2, 5)) == []

    def test_enumerates_all_paths_of_tiny_graph(self):
        # Triangle: exactly two simple 0-2 paths.
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=1)
        g.add_edge(1, 2, weight=1, cost=1)
        g.add_edge(0, 2, weight=5, cost=5)
        assert len(list(yen_paths(g, 0, 2, 100))) == 2


class TestKspCsp:
    def test_paper_example2(self):
        g = paper_figure1_network()
        result = ksp_csp(g, v(8), v(4), budget=13)
        assert result.pair() == (17, 13)

    def test_large_budget_returns_weight_optimum(self):
        g = paper_figure1_network()
        assert ksp_csp(g, v(8), v(4), budget=100).pair() == (16, 18)

    def test_infeasible(self):
        g = paper_figure1_network()
        assert not ksp_csp(g, v(8), v(4), budget=11).feasible

    def test_source_equals_target(self):
        g = paper_figure1_network()
        assert ksp_csp(g, v(3), v(3), budget=0).pair() == (0, 0)

    def test_exhaustion_guard_raises(self):
        g = paper_figure1_network()
        with pytest.raises(QueryError):
            ksp_csp(g, v(8), v(4), budget=12, max_paths=1)

    @pytest.mark.parametrize("seed", range(2))
    def test_agrees_with_ground_truth_on_weight(self, seed):
        g = random_connected_network(14, 8, seed=seed)
        rng = random.Random(seed)
        for _ in range(12):
            s, t = rng.randrange(14), rng.randrange(14)
            budget = rng.randint(10, 200)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            got = ksp_csp(g, s, t, budget, max_paths=4000)
            if want.feasible:
                # Weight is unique; ties on cost may resolve differently.
                assert got.weight == want.weight
            else:
                assert not got.feasible
