"""Unit tests for the Pulse-style bound-pruned CSP search."""

import random

import pytest

from repro.baselines import constrained_dijkstra, pulse_csp
from repro.datasets import paper_figure1_network, v
from repro.exceptions import QueryError
from repro.graph import RoadNetwork, grid_network, random_connected_network


class TestPulseBasics:
    def test_paper_example2(self):
        g = paper_figure1_network()
        result = pulse_csp(g, v(8), v(4), budget=13)
        assert result.pair() == (17, 13)
        assert result.path == [v(8), v(2), v(9), v(10), v(5), v(4)]

    def test_budget_sweep(self):
        g = paper_figure1_network()
        assert not pulse_csp(g, v(8), v(4), 11).feasible
        assert pulse_csp(g, v(8), v(4), 12).pair() == (18, 12)
        assert pulse_csp(g, v(8), v(4), 18).pair() == (16, 18)

    def test_source_equals_target(self):
        g = paper_figure1_network()
        assert pulse_csp(g, v(5), v(5), 0).pair() == (0, 0)

    def test_unreachable_budget_shortcircuits(self):
        g = paper_figure1_network()
        result = pulse_csp(g, v(8), v(4), budget=1)
        assert not result.feasible
        # The c_min pre-check fires before any extension.
        assert result.stats.concatenations == 0

    def test_disconnected(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=1)
        assert not pulse_csp(g, 0, 2, 100).feasible

    def test_invalid_query_rejected(self):
        g = paper_figure1_network()
        with pytest.raises(QueryError):
            pulse_csp(g, 0, 99, 5)

    def test_want_path_false(self):
        g = paper_figure1_network()
        result = pulse_csp(g, v(8), v(4), 13, want_path=False)
        assert result.feasible
        assert result.path is None


class TestPulseAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_constrained_dijkstra(self, seed):
        g = random_connected_network(25, 20, seed=seed)
        rng = random.Random(seed)
        for _ in range(40):
            s, t = rng.randrange(25), rng.randrange(25)
            budget = rng.randint(1, 250)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            got = pulse_csp(g, s, t, budget, want_path=False)
            assert got.pair() == want.pair(), (s, t, budget)

    def test_matches_on_grid(self):
        g = grid_network(6, 6, seed=3)
        rng = random.Random(3)
        for _ in range(25):
            s, t = rng.randrange(36), rng.randrange(36)
            budget = rng.randint(10, 300)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            assert pulse_csp(g, s, t, budget).pair() == want.pair()

    def test_returned_paths_are_real(self):
        g = random_connected_network(20, 15, seed=5)
        rng = random.Random(5)
        for _ in range(20):
            s, t = rng.randrange(20), rng.randrange(20)
            result = pulse_csp(g, s, t, rng.randint(1, 250))
            if result.feasible and s != t:
                assert g.path_metrics(result.path) == result.pair()

    def test_tight_budget_prunes_harder_than_loose(self):
        g = grid_network(6, 6, seed=7)
        from repro.graph import shortest_distance

        d = shortest_distance(g, 0, 35)
        tight = pulse_csp(g, 0, 35, d * 1.01, want_path=False)
        loose = pulse_csp(g, 0, 35, d * 10, want_path=False)
        assert tight.stats.concatenations <= loose.stats.concatenations
