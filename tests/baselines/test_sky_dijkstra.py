"""Unit tests for skyline Dijkstra (the ground-truth engine)."""

import random

import pytest

from repro.datasets import paper_figure1_network, v
from repro.graph import RoadNetwork, random_connected_network
from repro.baselines import (
    skyline_between,
    skyline_pairs_bruteforce,
    skyline_search,
)
from repro.skyline import expand, is_canonical, path_of_pairs


class TestSkylineBetween:
    def test_paper_example4(self):
        g = paper_figure1_network()
        assert path_of_pairs(skyline_between(g, v(8), v(9))) == [
            (8, 7), (7, 8)
        ]

    def test_paper_example5(self):
        g = paper_figure1_network()
        assert path_of_pairs(skyline_between(g, v(8), v(4))) == [
            (18, 12), (17, 13), (16, 18)
        ]

    def test_source_equals_target(self):
        g = paper_figure1_network()
        assert path_of_pairs(skyline_between(g, v(3), v(3))) == [(0, 0)]

    def test_result_canonical(self):
        g = random_connected_network(20, 18, seed=1)
        for t in (3, 9, 17):
            assert is_canonical(skyline_between(g, 0, t))

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bruteforce_enumeration(self, seed):
        g = random_connected_network(9, 6, seed=seed)
        rng = random.Random(seed)
        for _ in range(10):
            s, t = rng.randrange(9), rng.randrange(9)
            if s == t:
                continue
            fast = path_of_pairs(skyline_between(g, s, t))
            brute = skyline_pairs_bruteforce(g, s, t)
            assert fast == brute, (s, t)

    def test_max_cost_truncates(self):
        g = paper_figure1_network()
        full = path_of_pairs(skyline_between(g, v(8), v(4)))
        cut = path_of_pairs(skyline_between(g, v(8), v(4), max_cost=13))
        assert cut == [p for p in full if p[1] <= 13]

    def test_provenance_expands_to_real_paths(self):
        g = random_connected_network(15, 12, seed=3)
        entries = skyline_between(g, 0, 14, with_prov=True)
        for entry in entries:
            path = expand(entry, 0, 14)
            assert g.path_metrics(path) == (entry[0], entry[1])


class TestSkylineSearch:
    def test_source_frontier_is_zero(self):
        g = paper_figure1_network()
        frontiers = skyline_search(g, v(8))
        assert path_of_pairs(frontiers[v(8)]) == [(0, 0)]

    def test_allowed_filter_restricts_search(self):
        # 0 - 1 - 2 plus a detour 0 - 3 - 2; banning vertex 3 kills it.
        g = RoadNetwork(4)
        g.add_edge(0, 1, weight=5, cost=5)
        g.add_edge(1, 2, weight=5, cost=5)
        g.add_edge(0, 3, weight=1, cost=1)
        g.add_edge(3, 2, weight=1, cost=1)
        free = skyline_search(g, 0)
        assert path_of_pairs(free[2]) == [(2, 2)]
        walled = skyline_search(g, 0, allowed=lambda x: x != 3)
        assert path_of_pairs(walled[2]) == [(10, 10)]

    def test_unreachable_vertex_empty(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=1)
        assert skyline_search(g, 0)[2] == []

    def test_frontier_sizes_reasonable(self):
        # A ladder of independent trade-offs grows skyline sets.
        g = RoadNetwork(6)
        for i in range(0, 4, 2):
            g.add_edge(i, i + 2, weight=1, cost=6)
            g.add_edge(i, i + 1, weight=3, cost=1)
            g.add_edge(i + 1, i + 2, weight=3, cost=1)
        g.add_edge(4, 5, weight=1, cost=1)
        frontiers = skyline_search(g, 0)
        assert len(frontiers[4]) == 3  # (2,12), (8,4), (5,8)
