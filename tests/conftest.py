"""Shared fixtures.

Index builds are the expensive part of this suite, so networks and built
indexes are session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.core import QHLIndex
from repro.datasets import paper_figure1_network
from repro.graph import (
    grid_network,
    random_connected_network,
    ring_network,
)
from repro.hierarchy import LCAIndex, build_tree_decomposition
from repro.labeling import build_labels


@pytest.fixture(scope="session")
def paper_network():
    """The paper's Figure 1 network (13 vertices, 0-based ids)."""
    return paper_figure1_network()


@pytest.fixture(scope="session")
def paper_index(paper_network):
    """A fully built QHL index over the Figure 1 network."""
    return QHLIndex.build(paper_network, num_index_queries=400, seed=7)


@pytest.fixture(scope="session")
def small_grid():
    """A 8x8 grid — dense enough for interesting skyline sets."""
    return grid_network(8, 8, seed=3)


@pytest.fixture(scope="session")
def small_grid_index(small_grid):
    return QHLIndex.build(small_grid, num_index_queries=400, seed=3)


@pytest.fixture(scope="session")
def small_ring():
    """A small ring-of-towns network."""
    return ring_network(num_towns=6, town_rows=3, town_cols=3, seed=5)


@pytest.fixture(scope="session")
def random30():
    """A 30-vertex random network used by many unit tests."""
    return random_connected_network(30, 25, seed=11)


@pytest.fixture(scope="session")
def random30_tree(random30):
    return build_tree_decomposition(random30)


@pytest.fixture(scope="session")
def random30_labels(random30_tree):
    return build_labels(random30_tree)


@pytest.fixture(scope="session")
def random30_lca(random30_tree):
    return LCAIndex(random30_tree)
