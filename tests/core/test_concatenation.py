"""Unit + property tests for Algorithm 5 (two-pointer concatenation)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import concat_best_under, concat_cartesian
from repro.skyline import skyline_of


def sky(pairs):
    return skyline_of([(w, c, None) for w, c in pairs])


class TestPaperExample15:
    def test_answer_and_count(self):
        p_sh = sky([(9, 8), (8, 9)])
        p_ht = sky([(9, 4), (8, 9)])
        best, inspected = concat_best_under(p_sh, p_ht, budget=13)
        assert best[:2] == (17, 13)
        assert inspected == 3  # the paper walks exactly 3 cells

    def test_cartesian_inspects_all_four(self):
        p_sh = sky([(9, 8), (8, 9)])
        p_ht = sky([(9, 4), (8, 9)])
        best, inspected = concat_cartesian(p_sh, p_ht, budget=13)
        assert best[:2] == (17, 13)
        assert inspected == 4


class TestEdgeCases:
    def test_empty_side(self):
        assert concat_best_under([], sky([(1, 1)]), 10) == (None, 0)
        assert concat_best_under(sky([(1, 1)]), [], 10) == (None, 0)

    def test_all_over_budget(self):
        best, inspected = concat_best_under(
            sky([(1, 10)]), sky([(1, 10)]), budget=5
        )
        assert best is None
        assert inspected == 1

    def test_single_pair_within_budget(self):
        best, _ = concat_best_under(sky([(2, 3)]), sky([(4, 5)]), budget=8)
        assert best[:2] == (6, 8)

    def test_prune_suppresses_non_improving(self):
        best, _ = concat_best_under(
            sky([(2, 3)]), sky([(4, 5)]), budget=100, prune=(5, 5)
        )
        assert best is None  # (6, 8) is worse than the current best (5, 5)

    def test_prune_allows_cheaper_tie(self):
        best, _ = concat_best_under(
            sky([(2, 3)]), sky([(4, 4)]), budget=100, prune=(6, 8)
        )
        assert best[:2] == (6, 7)

    def test_linear_inspection_bound(self):
        a = sky([(50 - i, i) for i in range(1, 40)])
        b = sky([(50 - i, i) for i in range(1, 40)])
        _best, inspected = concat_best_under(a, b, budget=45)
        assert inspected <= len(a) + len(b)


pairs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
    ),
    min_size=1,
    max_size=20,
)


@given(pairs, pairs, st.integers(min_value=1, max_value=90))
def test_two_pointer_equals_cartesian(a, b, budget):
    """Lemmas 6-7: the sweep never misses the optimum."""
    sa, sb = sky(a), sky(b)
    fast, fast_count = concat_best_under(sa, sb, budget)
    slow, slow_count = concat_cartesian(sa, sb, budget)
    if slow is None:
        assert fast is None
    else:
        assert fast is not None
        assert fast[:2] == slow[:2]
    assert fast_count <= slow_count


@given(pairs, pairs, st.integers(min_value=1, max_value=90))
def test_two_pointer_linear(a, b, budget):
    sa, sb = sky(a), sky(b)
    _best, inspected = concat_best_under(sa, sb, budget)
    assert inspected <= len(sa) + len(sb)


@given(pairs, pairs, st.integers(min_value=1, max_value=90),
       st.tuples(st.integers(min_value=2, max_value=80),
                 st.integers(min_value=2, max_value=80)))
def test_prune_equivalent_to_post_filter(a, b, budget, prune):
    """Pruned sweep returns the optimum iff it beats the prune pair."""
    sa, sb = sky(a), sky(b)
    unpruned, _ = concat_best_under(sa, sb, budget)
    pruned, _ = concat_best_under(sa, sb, budget, prune=prune)
    if unpruned is not None and (unpruned[0], unpruned[1]) < prune:
        assert pruned is not None
        assert pruned[:2] == unpruned[:2]
    else:
        assert pruned is None
