"""Unit tests for the QHLIndex facade."""

import pytest

from repro.core import QHLIndex, random_index_queries
from repro.datasets import paper_figure1_network
from repro.exceptions import DisconnectedGraphError
from repro.graph import RoadNetwork, random_connected_network


class TestBuild:
    def test_disconnected_rejected(self):
        g = RoadNetwork(4)
        g.add_edge(0, 1, weight=1, cost=1)
        g.add_edge(2, 3, weight=1, cost=1)
        with pytest.raises(DisconnectedGraphError):
            QHLIndex.build(g)

    def test_build_deterministic(self):
        g = paper_figure1_network()
        a = QHLIndex.build(g, num_index_queries=100, seed=4)
        b = QHLIndex.build(g, num_index_queries=100, seed=4)
        assert a.labels.num_entries() == b.labels.num_entries()
        assert (
            a.pruning.num_conditions == b.pruning.num_conditions
        )

    def test_explicit_index_queries_used(self):
        from repro.types import CSPQuery

        g = paper_figure1_network()
        index = QHLIndex.build(g, index_queries=[], seed=0)
        assert index.pruning.num_conditions == 0
        index2 = QHLIndex.build(
            g, index_queries=[CSPQuery(7, 3, 13)], seed=0
        )
        assert index2.pruning.num_conditions > 0

    def test_store_paths_false(self):
        g = random_connected_network(15, 10, seed=0)
        index = QHLIndex.build(
            g, num_index_queries=50, store_paths=False, seed=0
        )
        result = index.query(0, 14, 500)
        assert result.feasible
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            index.query(0, 14, 500, want_path=True)

    def test_min_fill_strategy(self):
        g = random_connected_network(20, 12, seed=2)
        index = QHLIndex.build(
            g, num_index_queries=50, strategy="min_fill", seed=2
        )
        assert index.query(0, 19, 500).feasible


class TestStats:
    @pytest.fixture(scope="class")
    def index(self):
        return QHLIndex.build(
            paper_figure1_network(), num_index_queries=200, seed=1
        )

    def test_stats_fields_consistent(self, index):
        stats = index.stats()
        assert stats.treewidth == 4
        assert stats.treeheight == 7
        assert stats.label_entries == index.labels.num_entries()
        assert stats.label_bytes == index.labels.size_bytes()
        assert stats.pruning_conditions == index.pruning.num_conditions
        assert stats.pruning_bytes == index.pruning.size_bytes()

    def test_build_times_positive(self, index):
        stats = index.stats()
        assert stats.tree_seconds > 0
        assert stats.label_seconds > 0
        assert stats.pruning_seconds > 0

    def test_pruning_space_small_relative_to_labels(self, index):
        # The paper's headline: the additional index is tiny.
        stats = index.stats()
        assert stats.pruning_bytes < stats.label_bytes


class TestRandomIndexQueries:
    def test_count_and_range(self):
        g = random_connected_network(10, 5, seed=1)
        queries = random_index_queries(g, 25, seed=3)
        assert len(queries) == 25
        for q in queries:
            assert 0 <= q.source < 10
            assert 0 <= q.target < 10
            assert q.source != q.target

    def test_deterministic(self):
        g = random_connected_network(10, 5, seed=1)
        assert random_index_queries(g, 10, seed=3) == random_index_queries(
            g, 10, seed=3
        )
