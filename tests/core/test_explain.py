"""Tests for the query-plan explanation facility."""

import random

import pytest

from repro.core import QHLIndex
from repro.datasets import paper_figure1_network, v
from repro.graph import random_connected_network
from repro.types import CSPQuery


@pytest.fixture(scope="module")
def paper_engine():
    g = paper_figure1_network()
    index = QHLIndex.build(
        g, index_queries=[CSPQuery(v(8), v(4), 13)], seed=0
    )
    return index.qhl_engine()


class TestPaperQueryExplained:
    def test_case_and_answer(self, paper_engine):
        trace = paper_engine.explain(v(8), v(4), 13)
        assert trace.case == "separator"
        assert trace.lca == v(10)
        assert trace.answer == (17, 13)

    def test_initial_separators_match_example11(self, paper_engine):
        trace = paper_engine.explain(v(8), v(4), 13)
        by_child = dict(trace.initial_separators)
        assert set(by_child[v(9)]) == {v(10), v(13)}
        assert set(by_child[v(5)]) == {v(10), v(12)}

    def test_condition_application_matches_example12(self, paper_engine):
        trace = paper_engine.explain(v(8), v(4), 13)
        pruned_sets = {
            (app.separator_child, app.v_end): app.pruned
            for app in trace.conditions
        }
        assert pruned_sets.get((v(9), v(8))) == (v(13),)

    def test_chosen_separator_is_singleton_v10(self, paper_engine):
        trace = paper_engine.explain(v(8), v(4), 13)
        assert trace.chosen == (v(10),)

    def test_hoplink_work_matches_example15(self, paper_engine):
        trace = paper_engine.explain(v(8), v(4), 13)
        assert len(trace.hoplinks) == 1
        work = trace.hoplinks[0]
        assert work.hoplink == v(10)
        assert (work.size_sh, work.size_ht) == (2, 2)
        assert work.inspected == 3
        assert work.found == (17, 13)

    def test_render_is_readable(self, paper_engine):
        text = paper_engine.explain(v(8), v(4), 13).render()
        assert "separator" in text
        assert "candidate" in text
        assert "hoplink" in text
        assert "(17, 13)" in text

    def test_ancestor_descendant_case(self, paper_engine):
        trace = paper_engine.explain(v(8), v(13), 12)
        assert trace.case == "ancestor-descendant"
        assert trace.answer == (11, 12)
        assert "one label" in trace.render()

    def test_same_vertex_case(self, paper_engine):
        trace = paper_engine.explain(v(3), v(3), 0)
        assert trace.case == "same-vertex"
        assert trace.answer == (0, 0)

    def test_infeasible_renders(self, paper_engine):
        trace = paper_engine.explain(v(8), v(4), 1)
        assert trace.answer is None
        assert "infeasible" in trace.render()


class TestExplanationConsistency:
    @pytest.mark.parametrize("seed", range(3))
    def test_explain_agrees_with_query(self, seed):
        g = random_connected_network(25, 20, seed=seed)
        engine = QHLIndex.build(
            g, num_index_queries=200, seed=seed
        ).qhl_engine()
        rng = random.Random(seed)
        for _ in range(30):
            s, t = rng.randrange(25), rng.randrange(25)
            budget = rng.randint(1, 250)
            trace = engine.explain(s, t, budget)
            result = engine.query(s, t, budget)
            assert trace.answer == result.pair()
            if trace.case == "separator":
                assert trace.chosen
                assert len(trace.hoplinks) == result.stats.hoplinks
                inspected = sum(w.inspected for w in trace.hoplinks)
                assert inspected == result.stats.concatenations
