"""Golden-file regression pin of the paper's worked example.

``tests/golden/paper_example.json`` freezes every observable of the
query ``(v8, v4, C=13)`` over the Figure 1 network — the hoplink sets
``H(s)`` / ``H(t)``, what the pruning conditions removed, the candidate
estimates, the per-hoplink concatenation work (the paper's "3 path
concatenations"), the answer, the per-phase operation counters, and the
skyline sets the worked examples quote.  A behavioural drift anywhere
in the pipeline — decomposition order, label contents, pruning, or
concatenation — shows up here as a readable JSON diff instead of a
silent perf or correctness regression.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datasets.paper_example import v

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "paper_example.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def explanation(paper_index, golden):
    q = golden["query"]
    return paper_index.qhl_engine().explain(
        q["source"], q["target"], q["budget"]
    )


class TestQueryPlan:
    def test_case_and_lca(self, explanation, golden):
        assert explanation.case == golden["case"]
        assert explanation.lca == golden["lca"]

    def test_initial_hoplink_sets(self, explanation, golden):
        """H(s) = {v10, v13} and H(t) = {v10, v12} (Example 11)."""
        got = [
            {"child": child, "separator": list(sep)}
            for child, sep in explanation.initial_separators
        ]
        assert got == golden["initial_separators"]

    def test_pruning_applications(self, explanation, golden):
        got = [
            {
                "child": app.separator_child,
                "v_end": app.v_end,
                "before": list(app.before),
                "after": list(app.after),
            }
            for app in explanation.conditions
        ]
        assert got == golden["pruning_applications"]

    def test_candidates_and_choice(self, explanation, golden):
        got = [
            {"separator": list(sep), "estimated_cost": cost}
            for sep, cost in explanation.candidates
        ]
        assert got == golden["candidates"]
        assert list(explanation.chosen) == golden["chosen"]

    def test_hoplink_concatenation_work(self, explanation, golden):
        """The query costs exactly 3 concatenations (Example 10/15)."""
        got = [
            {
                "hoplink": work.hoplink,
                "size_sh": work.size_sh,
                "size_ht": work.size_ht,
                "inspected": work.inspected,
                "found": list(work.found) if work.found else None,
            }
            for work in explanation.hoplinks
        ]
        assert got == golden["hoplink_work"]
        assert sum(w.inspected for w in explanation.hoplinks) == 3

    def test_answer(self, explanation, golden):
        assert list(explanation.answer) == golden["answer"]


class TestOperationCounters:
    def test_per_phase_op_counts(self, paper_index, golden):
        q = golden["query"]
        result = paper_index.query(q["source"], q["target"], q["budget"])
        want = golden["query_stats"]
        assert result.stats.hoplinks == want["hoplinks"]
        assert result.stats.concatenations == want["concatenations"]
        assert result.stats.label_lookups == want["label_lookups"]
        assert result.stats.candidates == want["candidates"]

    def test_pruning_index_size(self, paper_index, golden):
        assert (
            paper_index.pruning.num_conditions
            == golden["num_pruning_conditions"]
        )


class TestSkylineSets:
    def test_worked_example_frontiers(self, paper_index, golden):
        """The P sets the examples quote, e.g. P_v8v4 (Example 2)."""
        cached = paper_index.cached_engine(cache_size=32)
        for key, want in golden["frontiers"].items():
            a, b = (int(x) for x in key.split(","))
            got = [[e[0], e[1]] for e in cached.frontier(v(a), v(b))]
            assert got == want, f"P_v{a}v{b} drifted"
