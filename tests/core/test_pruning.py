"""Unit tests for pruning conditions (Theorem 1, Algorithms 6-7, §4)."""

import random

import pytest

from repro.core import (
    PruningConditionIndex,
    build_condition,
    build_pruning_index,
    compute_cub,
)
from repro.datasets import paper_figure1_network, v
from repro.hierarchy import LCAIndex, build_tree_decomposition
from repro.labeling import build_labels
from repro.skyline import skyline_of
from repro.types import CSPQuery

INF = float("inf")


def sky(pairs):
    return skyline_of([(w, c, None) for w, c in pairs])


@pytest.fixture(scope="module")
def built():
    g = paper_figure1_network()
    tree = build_tree_decomposition(g)
    labels = build_labels(tree)
    return g, tree, labels, LCAIndex(tree)


class TestComputeCub:
    def test_paper_example16(self, built):
        """v_end=v8, h=v13, u=v10 must give C_ub = 14."""
        _g, _tree, labels, _lca = built
        cub = compute_cub(
            labels.get(v(8), v(13)),
            labels.get(v(8), v(10)),
            labels.get(v(10), v(13)),
            mid=v(10),
        )
        assert cub == 14

    def test_full_subset_gives_infinity(self):
        p_prime = sky([(5, 5), (3, 7)])
        p_vu = sky([(2, 2), (1, 4)])
        p_uh = sky([(3, 3), (2, 4)])
        # P'' contains {(5,5),(4,6),(4,7)?...}; craft P' ⊆ P''.
        p_prime = sky([(5, 5)])
        assert compute_cub(p_prime, p_vu, p_uh, mid=0) == INF

    def test_first_element_missing_gives_zero_pruning_power(self):
        # C_ub equals the first missing element's cost; if even the
        # cheapest P' member is absent, C_ub = that cost — pruning only
        # applies to budgets below it.
        p_prime = sky([(5, 1)])
        p_vu = sky([(9, 9)])
        p_uh = sky([(9, 9)])
        assert compute_cub(p_prime, p_vu, p_uh, mid=0) == 1

    def test_empty_concatenation_set(self):
        p_prime = sky([(5, 4)])
        assert compute_cub(p_prime, [], [], mid=0) == 4

    def test_prefix_matching_stops_at_first_miss(self):
        p_prime = sky([(9, 1), (5, 5), (1, 9)])
        # P'' reproduces (9,1) and (5,5) but not (1,9).
        p_vu = sky([(4, 1)])
        p_uh = sky([(5, 0.5), (1, 4)])
        # P'' = {(9, 1.5), (5, 5)} — (9,1) missing already.
        assert compute_cub(p_prime, p_vu, p_uh, mid=0) == 1

    def test_duplicate_costs_in_concatenation(self):
        # P'' may hold several pairs with equal cost; the scan must not
        # skip a match hidden behind an equal-cost non-match.
        p_prime = sky([(7, 10)])
        p_vu = sky([(5, 5), (3, 7)])
        p_uh = sky([(4, 3), (2, 5)])
        # P'' pairs: (9,8), (7,10), (7,10), (5,12) -> (7,10) present.
        assert compute_cub(p_prime, p_vu, p_uh, mid=0) == INF


class TestConditionIndex:
    def test_add_and_lookup(self):
        index = PruningConditionIndex()
        index.add(3, 7, {1: 14.0, 2: 0})
        assert index.lookup(3, 7) == {1: 14.0}  # zero bounds dropped
        assert index.lookup(3, 8) is None

    def test_prune_keeps_when_budget_reaches_bound(self):
        index = PruningConditionIndex()
        index.add(3, 7, {1: 14.0})
        assert index.prune(3, 7, (1, 2), budget=14) == (1, 2)
        assert index.prune(3, 7, (1, 2), budget=13.9) == (2,)

    def test_prune_without_condition_returns_none(self):
        index = PruningConditionIndex()
        assert index.prune(0, 0, (1, 2), budget=5) is None

    def test_infinite_bound_always_prunes(self):
        index = PruningConditionIndex()
        index.add(0, 0, {1: INF})
        assert index.prune(0, 0, (1, 2), budget=1e12) == (2,)

    def test_size_accounting(self):
        index = PruningConditionIndex()
        index.add(0, 0, {1: 5.0, 2: 6.0})
        index.add(0, 1, {1: 5.0})
        assert index.num_conditions == 2
        assert index.num_bounds() == 3
        assert index.size_bytes() == 3 * 8 + 2 * 16


class TestBuildCondition:
    def test_paper_example17(self, built):
        """Separator {v10, v13}, v_end=v8: C_ub[v13] = 14."""
        _g, _tree, labels, _lca = built
        index = PruningConditionIndex()
        bounds = build_condition(
            labels, (v(10), v(13)), v(8), random.Random(0), index, {}
        )
        assert bounds == {v(13): 14}

    def test_first_ordered_hoplink_never_pruned(self, built):
        """Lemma 8: the hoplink with the smallest min-cost set cannot be
        pruned, so it never receives a bound."""
        _g, _tree, labels, _lca = built
        index = PruningConditionIndex()
        bounds = build_condition(
            labels, (v(10), v(13)), v(8), random.Random(0), index, {}
        )
        assert v(10) not in bounds

    def test_cache_is_consulted(self, built):
        _g, _tree, labels, _lca = built
        index = PruningConditionIndex()
        cache = {(v(8), v(13)): (v(10), 14.0)}
        bounds = build_condition(
            labels, (v(10), v(13)), v(8), random.Random(0), index, cache
        )
        assert bounds == {v(13): 14.0}
        assert index.cache_hits == 1
        assert index.algorithm6_calls == 0

    def test_cache_ignored_when_pruner_not_in_separator(self, built):
        _g, _tree, labels, _lca = built
        index = PruningConditionIndex()
        cache = {(v(8), v(13)): (v(11), 99.0)}  # v11 not in separator
        build_condition(
            labels, (v(10), v(13)), v(8), random.Random(0), index, cache
        )
        assert index.cache_hits == 0
        assert index.algorithm6_calls == 1


class TestBuildPruningIndex:
    def test_builds_four_combinations_per_query(self, built):
        _g, tree, labels, lca = built
        queries = [CSPQuery(v(8), v(4), 13)]
        index = build_pruning_index(tree, labels, lca, queries, seed=0)
        # (H(s)=sep-of-v9, v8), (sep-of-v9, v4), (sep-of-v5, v8),
        # (sep-of-v5, v4).
        assert index.num_conditions == 4
        assert index.has(v(9), v(8))
        assert index.has(v(9), v(4))
        assert index.has(v(5), v(8))
        assert index.has(v(5), v(4))

    def test_paper_example12_condition(self, built):
        _g, tree, labels, lca = built
        index = build_pruning_index(
            tree, labels, lca, [CSPQuery(v(8), v(4), 13)], seed=0
        )
        assert index.lookup(v(9), v(8)) == {v(13): 14}

    def test_ancestor_descendant_queries_skipped(self, built):
        _g, tree, labels, lca = built
        index = build_pruning_index(
            tree, labels, lca, [CSPQuery(v(8), v(13), 10)], seed=0
        )
        assert index.num_conditions == 0

    def test_duplicate_combinations_not_rebuilt(self, built):
        _g, tree, labels, lca = built
        queries = [CSPQuery(v(8), v(4), 13)] * 5
        index = build_pruning_index(tree, labels, lca, queries, seed=0)
        assert index.num_conditions == 4

    def test_build_seconds_recorded(self, built):
        _g, tree, labels, lca = built
        index = build_pruning_index(
            tree, labels, lca, [CSPQuery(v(8), v(4), 13)], seed=0
        )
        assert index.build_seconds > 0


class TestTheorem1Safety:
    """The deep invariant: pruning must never change any answer."""

    @pytest.mark.parametrize("seed", range(4))
    def test_pruned_answers_match_unpruned(self, seed):
        from repro.core import QHLIndex
        from repro.graph import random_connected_network

        g = random_connected_network(35, 30, seed=seed)
        index = QHLIndex.build(g, num_index_queries=500, seed=seed)
        with_pruning = index.qhl_engine(use_pruning_conditions=True)
        without = index.qhl_engine(use_pruning_conditions=False)
        rng = random.Random(1000 + seed)
        for _ in range(80):
            s, t = rng.randrange(35), rng.randrange(35)
            budget = rng.randint(1, 300)
            assert (
                with_pruning.query(s, t, budget).pair()
                == without.query(s, t, budget).pair()
            ), (s, t, budget)

    def test_pruned_separator_never_empty(self, built):
        """Corollary 1: pruning cannot remove every hoplink."""
        _g, tree, labels, lca = built
        rng = random.Random(3)
        index = PruningConditionIndex()

        def subtree(root):
            out, stack = [], [root]
            while stack:
                x = stack.pop()
                out.append(x)
                stack.extend(tree.children[x])
            return out

        for child in range(13):
            separator = tree.bag[child]
            if len(separator) < 2:
                continue
            # Valid end vertices live in the child's subtree (their
            # labels then cover every hoplink of the separator).
            for v_end in subtree(child):
                bounds = build_condition(
                    labels, separator, v_end, rng, index, {}
                )
                index.add(child, v_end, bounds)
                for budget in (0, 1, 5, 10, 20, 100):
                    pruned = index.prune(child, v_end, separator, budget)
                    assert pruned, (child, v_end, budget)
