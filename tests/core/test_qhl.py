"""Unit tests for the QHL query algorithm (Algorithm 3)."""

import random

import pytest

from repro.baselines import constrained_dijkstra
from repro.core import QHLIndex
from repro.datasets import paper_figure1_network, v
from repro.exceptions import QueryError
from repro.types import CSPQuery


@pytest.fixture(scope="module")
def paper():
    g = paper_figure1_network()
    index = QHLIndex.build(
        g, index_queries=[CSPQuery(v(8), v(4), 13)], seed=0
    )
    return g, index


class TestPaperRunningExample:
    def test_answer(self, paper):
        _g, index = paper
        assert index.query(v(8), v(4), 13).pair() == (17, 13)

    def test_three_concatenations(self, paper):
        """§2.3: 'our proposed QHL only needs to do 3 concatenations'."""
        _g, index = paper
        result = index.query(v(8), v(4), 13)
        assert result.stats.concatenations == 3

    def test_single_hoplink_after_pruning(self, paper):
        """Example 13: H = {{v10}, {v10, v12}}; T({v10}) wins."""
        _g, index = paper
        result = index.query(v(8), v(4), 13)
        assert result.stats.hoplinks == 1

    def test_candidate_count_in_range(self, paper):
        # The paper's |H| is 2..4; ours deduplicates identical
        # candidates, so 1 is possible when prunings coincide.
        _g, index = paper
        result = index.query(v(8), v(4), 13)
        assert 1 <= result.stats.candidates <= 4

    def test_path_retrieval(self, paper):
        _g, index = paper
        result = index.query(v(8), v(4), 13, want_path=True)
        assert result.path == [v(8), v(2), v(9), v(10), v(5), v(4)]

    def test_larger_budget_no_pruning_applies(self, paper):
        """C = 14 >= C_ub[v13] = 14 keeps v13 in H(s)."""
        _g, index = paper
        result = index.query(v(8), v(4), 14)
        assert result.pair() == (17, 13)

    def test_budget_sweep_matches_skyline(self, paper):
        _g, index = paper
        assert not index.query(v(8), v(4), 11).feasible
        assert index.query(v(8), v(4), 12).pair() == (18, 12)
        assert index.query(v(8), v(4), 17.5).pair() == (17, 13)
        assert index.query(v(8), v(4), 18).pair() == (16, 18)


class TestQueryShapes:
    def test_source_equals_target(self, paper):
        _g, index = paper
        result = index.query(v(6), v(6), 0)
        assert result.pair() == (0, 0)

    def test_source_equals_target_with_path(self, paper):
        _g, index = paper
        result = index.query(v(6), v(6), 0, want_path=True)
        assert result.path == [v(6)]

    def test_ancestor_descendant_case(self, paper):
        _g, index = paper
        result = index.query(v(8), v(13), 12)
        assert result.pair() == (11, 12)
        assert result.stats.hoplinks == 0

    def test_adjacent_vertices(self, paper):
        g, index = paper
        result = index.query(v(9), v(10), 1)
        assert result.pair() == (1, 1)

    def test_invalid_vertex_rejected(self, paper):
        _g, index = paper
        with pytest.raises(QueryError):
            index.query(0, 50, 10)

    def test_negative_budget_rejected(self, paper):
        _g, index = paper
        with pytest.raises(QueryError):
            index.query(0, 1, -3)

    def test_infeasible_returns_empty_result(self, paper):
        _g, index = paper
        result = index.query(v(8), v(4), 1)
        assert not result.feasible
        assert result.weight is None and result.cost is None

    def test_stats_seconds_populated(self, paper):
        _g, index = paper
        assert index.query(v(8), v(4), 13).stats.seconds > 0


class TestAblationVariants:
    def test_no_pruning_uses_more_hoplinks(self, paper):
        _g, index = paper
        pruned = index.qhl_engine(use_pruning_conditions=True)
        plain = index.qhl_engine(use_pruning_conditions=False)
        r1 = pruned.query(v(8), v(4), 13)
        r2 = plain.query(v(8), v(4), 13)
        assert r1.pair() == r2.pair()
        assert r1.stats.hoplinks <= r2.stats.hoplinks

    def test_cartesian_variant_inspects_more(self, paper):
        _g, index = paper
        fast = index.qhl_engine(use_two_pointer=True)
        slow = index.qhl_engine(use_two_pointer=False)
        r1 = fast.query(v(8), v(4), 13)
        r2 = slow.query(v(8), v(4), 13)
        assert r1.pair() == r2.pair()
        assert r1.stats.concatenations <= r2.stats.concatenations

    def test_variants_agree_on_random_graphs(self):
        from repro.graph import random_connected_network

        g = random_connected_network(30, 25, seed=17)
        index = QHLIndex.build(g, num_index_queries=300, seed=17)
        engines = [
            index.qhl_engine(),
            index.qhl_engine(use_pruning_conditions=False),
            index.qhl_engine(use_two_pointer=False),
            index.qhl_engine(
                use_pruning_conditions=False, use_two_pointer=False
            ),
        ]
        rng = random.Random(99)
        for _ in range(50):
            s, t = rng.randrange(30), rng.randrange(30)
            budget = rng.randint(1, 250)
            answers = {e.query(s, t, budget).pair() for e in engines}
            assert len(answers) == 1, (s, t, budget)


class TestGroundTruthAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_networks(self, seed):
        from repro.graph import random_connected_network

        g = random_connected_network(30, 25, seed=100 + seed)
        index = QHLIndex.build(g, num_index_queries=400, seed=seed)
        rng = random.Random(seed)
        for _ in range(60):
            s, t = rng.randrange(30), rng.randrange(30)
            budget = rng.randint(1, 250)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            assert index.query(s, t, budget).pair() == want.pair()

    def test_grid_with_paths(self, small_grid, small_grid_index):
        rng = random.Random(8)
        for _ in range(40):
            s, t = rng.randrange(64), rng.randrange(64)
            budget = rng.randint(10, 400)
            result = small_grid_index.query(s, t, budget, want_path=True)
            want = constrained_dijkstra(
                small_grid, s, t, budget, want_path=False
            )
            assert result.pair() == want.pair()
            if result.feasible and s != t:
                assert small_grid.path_metrics(result.path) == result.pair()
