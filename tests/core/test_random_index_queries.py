"""Unit tests for ``random_index_queries`` (the Q_index sampler)."""

from __future__ import annotations

import random

import repro.core.engine as engine_mod
from repro.core.engine import random_index_queries
from repro.types import CSPQuery


class TestRNGContract:
    def test_pure_function_of_inputs(self, random30):
        first = random_index_queries(random30, 50, seed=9)
        second = random_index_queries(random30, 50, seed=9)
        assert first == second

    def test_different_seeds_differ(self, random30):
        assert random_index_queries(random30, 50, seed=9) != (
            random_index_queries(random30, 50, seed=10)
        )

    def test_global_random_state_untouched(self, random30):
        """The documented contract: a private Random, not the global one."""
        random.seed(12345)
        state_before = random.getstate()
        random_index_queries(random30, 50, seed=9)
        assert random.getstate() == state_before

    def test_result_shape(self, random30):
        queries = random_index_queries(random30, 25, seed=3)
        assert len(queries) == 25
        n = random30.num_vertices
        for query in queries:
            assert isinstance(query, CSPQuery)
            assert 0 <= query.source < n
            assert 0 <= query.target < n
            assert query.budget == 0  # placeholder, irrelevant to Alg. 6

    def test_zero_count(self, random30):
        assert random_index_queries(random30, 0, seed=1) == []


class TestNoDegeneratePairs:
    def test_never_source_equals_target(self, random30):
        for seed in range(10):
            for query in random_index_queries(random30, 200, seed=seed):
                assert query.source != query.target

    def test_degenerate_draws_are_redrawn(self, random30, monkeypatch):
        """A sampler that emits s == t pairs gets redrawn, not recorded."""
        draws = iter([(4, 4), (4, 4), (4, 7), (2, 2), (5, 1)])

        def fake_sampler(network, rng):
            return next(draws)

        monkeypatch.setattr(
            engine_mod, "sample_connected_pair", fake_sampler
        )
        queries = random_index_queries(random30, 2, seed=0)
        assert queries == [CSPQuery(4, 7, 0), CSPQuery(5, 1, 0)]
