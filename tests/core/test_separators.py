"""Unit tests for separator initialisation and cost estimation (§3.2)."""

import pytest

from repro.core import LabelFetcher, estimated_cost, initial_separators
from repro.datasets import paper_figure1_network, v
from repro.hierarchy import LCAIndex, build_tree_decomposition
from repro.labeling import build_labels


@pytest.fixture(scope="module")
def built():
    g = paper_figure1_network()
    tree = build_tree_decomposition(g)
    labels = build_labels(tree)
    return g, tree, labels, LCAIndex(tree)


class TestPaperExample11:
    def test_h_s_and_h_t(self, built):
        _g, tree, _labels, lca = built
        lca_v = lca.query(v(8), v(4))
        c_s, h_s, c_t, h_t = initial_separators(tree, lca_v, v(8), v(4))
        assert c_s == v(9)
        assert set(h_s) == {v(10), v(13)}
        assert c_t == v(5)
        assert set(h_t) == {v(10), v(12)}

    def test_both_smaller_than_lca_bag(self, built):
        _g, tree, _labels, lca = built
        lca_v = lca.query(v(8), v(4))
        _c_s, h_s, _c_t, h_t = initial_separators(tree, lca_v, v(8), v(4))
        assert len(h_s) < len(tree.bag_with_self(lca_v))
        assert len(h_t) < len(tree.bag_with_self(lca_v))

    def test_separator_members_are_common_ancestors(self, built):
        """Feasibility: every hoplink's node must be an ancestor-or-self
        of both X(s) and X(t) so both labels hold its sets."""
        _g, tree, labels, lca = built
        lca_v = lca.query(v(8), v(4))
        _c_s, h_s, _c_t, h_t = initial_separators(tree, lca_v, v(8), v(4))
        for h in tuple(h_s) + tuple(h_t):
            assert labels.has(v(8), h)
            assert labels.has(h, v(4))


class TestLabelFetcher:
    def test_memoises_lookups(self, built):
        _g, _tree, labels, _lca = built
        fetcher = LabelFetcher(labels, v(8), v(4))
        first = fetcher.from_s(v(10))
        second = fetcher.from_s(v(10))
        assert first is second
        assert fetcher.lookups == 1

    def test_counts_both_sides(self, built):
        _g, _tree, labels, _lca = built
        fetcher = LabelFetcher(labels, v(8), v(4))
        fetcher.from_s(v(10))
        fetcher.from_t(v(10))
        assert fetcher.lookups == 2

    def test_fetches_correct_sets(self, built):
        from repro.skyline import path_of_pairs

        _g, _tree, labels, _lca = built
        fetcher = LabelFetcher(labels, v(8), v(4))
        assert path_of_pairs(fetcher.from_s(v(10))) == [(9, 8), (8, 9)]
        assert path_of_pairs(fetcher.from_t(v(10))) == [(9, 4), (8, 9)]


class TestEstimatedCost:
    def test_t_h_formula(self, built):
        """T(H) = sum(|P_sh| + |P_ht|) over the separator."""
        _g, tree, labels, lca = built
        lca_v = lca.query(v(8), v(4))
        _c_s, h_s, _c_t, h_t = initial_separators(tree, lca_v, v(8), v(4))
        fetcher = LabelFetcher(labels, v(8), v(4))
        want = sum(
            len(labels.get(v(8), h)) + len(labels.get(h, v(4)))
            for h in h_s
        )
        assert estimated_cost(fetcher, h_s) == want

    def test_empty_separator_costs_zero(self, built):
        _g, _tree, labels, _lca = built
        fetcher = LabelFetcher(labels, v(8), v(4))
        assert estimated_cost(fetcher, ()) == 0

    def test_smaller_separator_usually_cheaper(self, built):
        _g, tree, labels, lca = built
        lca_v = lca.query(v(8), v(4))
        _c_s, h_s, _c_t, h_t = initial_separators(tree, lca_v, v(8), v(4))
        fetcher = LabelFetcher(labels, v(8), v(4))
        full_bag = tree.bag_with_self(lca_v)
        assert estimated_cost(fetcher, h_s) <= estimated_cost(
            fetcher, full_bag
        )
