"""Empirical validation of the paper's lemmas (§3.3).

The pruning-safety integration tests already cover Theorem 1
end-to-end; these tests check the intermediate lemmas directly on real
networks, so a violation points at the exact broken step.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import skyline_between
from repro.core import compute_cub
from repro.core.separators import initial_separators
from repro.graph import random_connected_network
from repro.hierarchy import LCAIndex, build_tree_decomposition
from repro.labeling import build_labels
from repro.skyline import (
    cartesian_entries,
    dominates,
    filter_under,
    join,
    skyline_of,
)

pairs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
    ),
    min_size=1,
    max_size=12,
)


def sky(ps):
    return skyline_of([(w, c, None) for w, c in ps])


@given(pairs, pairs, st.integers(min_value=1, max_value=70))
def test_lemma3_filtered_join_equivalence(a, b, theta):
    """{p1 ⊕ p2}^θ == {p1 ∈ P_su^θ ⊕ p2}^θ."""
    sa, sb = sky(a), sky(b)
    lhs = filter_under(
        sorted(cartesian_entries(sa, sb, 0), key=lambda e: (e[1], e[0])),
        theta,
    )
    rhs = filter_under(
        sorted(
            cartesian_entries(filter_under(sa, theta), sb, 0),
            key=lambda e: (e[1], e[0]),
        ),
        theta,
    )
    assert [(e[0], e[1]) for e in lhs] == [(e[0], e[1]) for e in rhs]


def _pruning_instances(seed, count=10):
    """Real (P_sh, P_su, P_uh, C_ub) tuples with C_ub > 0 from a built
    index, harvested by replaying Algorithm 7's choices."""
    g = random_connected_network(30, 25, seed=seed)
    tree = build_tree_decomposition(g)
    labels = build_labels(tree)
    lca = LCAIndex(tree)
    rng = random.Random(seed)
    instances = []
    attempts = 0
    while len(instances) < count and attempts < 400:
        attempts += 1
        s, t = rng.randrange(30), rng.randrange(30)
        if s == t:
            continue
        l, s_anc, t_anc = lca.relation(s, t)
        if s_anc or t_anc:
            continue
        _c_s, h_s, _c_t, _h_t = initial_separators(tree, l, s, t)
        if len(h_s) < 2:
            continue
        ordered = sorted(h_s, key=lambda h: labels.get(s, h)[0][1])
        for i in range(1, len(ordered)):
            h = ordered[i]
            u = ordered[rng.randrange(i)]
            cub = compute_cub(
                labels.get(s, h), labels.get(s, u), labels.get(u, h), mid=u
            )
            if cub > 0:
                instances.append(
                    (g, s, h, u, labels.get(s, h), labels.get(s, u),
                     labels.get(u, h), cub)
                )
    return instances


@pytest.mark.parametrize("seed", range(3))
def test_lemma4_set_domination(seed):
    """If h is pruned by u under θ, then P_su^θ ≺ P_sh^θ
    (Definition 5)."""
    for (_g, _s, _h, _u, p_sh, p_su, _p_uh, cub) in _pruning_instances(seed):
        theta = cub if cub != float("inf") else (
            p_sh[-1][1] + p_su[-1][1] + 10
        )
        sh_cut = filter_under(p_sh, theta)
        su_cut = filter_under(p_su, theta)
        # Condition 1: every member of P_sh^θ is dominated by some
        # member of P_su^θ.
        for p in sh_cut:
            assert any(dominates(q, p) for q in su_cut), (seed, p)
        # Condition 2: no member of P_su^θ is dominated by one of
        # P_sh^θ.
        for q in su_cut:
            assert not any(dominates(p, q) for p in sh_cut)


@pytest.mark.parametrize("seed", range(3))
def test_lemma8_minimum_cost_ordering(seed):
    """If h is pruned by u, the cheapest s-h path costs more than the
    cheapest s-u path.

    The lemma implicitly assumes *non-vacuous* pruning: when
    ``C_ub = c(p^(1)_sh)`` the subset condition holds because the
    filtered prefix is empty (no s-h path fits any smaller budget), and
    the cost ordering need not hold.  Algorithm 7's ordering heuristic
    merely skips some such vacuous opportunities, which costs nothing.
    """
    for (_g, _s, _h, _u, p_sh, p_su, _p_uh, cub) in _pruning_instances(
        seed
    ):
        if cub > p_sh[0][1]:  # the cheapest s-h path really is covered
            assert p_sh[0][1] > p_su[0][1]


@pytest.mark.parametrize("seed", range(3))
def test_theorem1_subset_condition_holds_at_cub(seed):
    """Replaying Algorithm 6's output: P_sh^θ ⊆ {P_su ⊗ P_uh}^θ for
    θ = C_ub (the largest valid θ)."""
    for (_g, _s, _h, u, p_sh, p_su, p_uh, cub) in _pruning_instances(seed):
        theta = cub if cub != float("inf") else p_sh[-1][1] + 1
        concatenations = {
            (e[0], e[1]) for e in cartesian_entries(p_su, p_uh, u)
        }
        for entry in filter_under(p_sh, theta):
            assert (entry[0], entry[1]) in concatenations


@pytest.mark.parametrize("seed", range(2))
def test_labels_vs_independent_skyline_engine(seed):
    """The separator-based join P_sh ⊗ P_ht must contain the true
    skyline P_st (the ⊆ of §2.3) for the LCA bag's hoplinks."""
    g = random_connected_network(25, 20, seed=seed)
    tree = build_tree_decomposition(g)
    labels = build_labels(tree)
    lca = LCAIndex(tree)
    rng = random.Random(seed)
    checked = 0
    while checked < 8:
        s, t = rng.randrange(25), rng.randrange(25)
        if s == t:
            continue
        l, s_anc, t_anc = lca.relation(s, t)
        if s_anc or t_anc:
            continue
        union = []
        for h in tree.bag_with_self(l):
            part = join(labels.get(s, h), labels.get(h, t), mid=h)
            union = skyline_of(union + part)
        truth = skyline_between(g, s, t)
        assert [(e[0], e[1]) for e in union] == [
            (e[0], e[1]) for e in truth
        ]
        checked += 1
