"""Differential-testing harness.

Every engine in this package claims the same contract: for a query
``(s, t, C)`` return the minimum weight over s-t paths of cost ``<= C``
and, among minimum-weight answers, the smallest cost (see
``repro.core.concatenation.concat_best_under``).  This module
cross-checks the claim by running one query set through every engine and
diffing the ``(feasible, weight, cost)`` triples against the index-free
reference (:func:`repro.baselines.dijkstra_csp.constrained_dijkstra`).

Query generation is seed-pinned (private ``random.Random``) and budgets
are drawn from each pair's true cost range, so every run exercises the
interesting regimes: infeasible budgets, the tight boundary, mid-range
trade-offs, and effectively-unconstrained queries.

``REPRO_DIFF_QUERIES`` scales the per-family query count (CI pins it
for a fixed differential budget; unset, the tests use their defaults).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

from repro.baselines import constrained_dijkstra, skyline_between
from repro.baselines.sky_dijkstra import SkyDijkstraEngine
from repro.core import QHLIndex
from repro.types import CSPQuery


def query_count(default: int) -> int:
    """Per-family query budget, overridable via ``REPRO_DIFF_QUERIES``."""
    raw = os.environ.get("REPRO_DIFF_QUERIES", "")
    return int(raw) if raw else default


@dataclass(frozen=True)
class Disagreement:
    """One engine answering one query differently from the reference."""

    engine: str
    query: CSPQuery
    got: tuple
    want: tuple

    def __str__(self) -> str:  # pragma: no cover - failure diagnostics
        s, t, c = self.query
        return (
            f"{self.engine} on ({s}, {t}, C={c}): "
            f"got {self.got}, reference says {self.want}"
        )


def generate_cases(network, count: int, seed: int) -> list[CSPQuery]:
    """``count`` seed-pinned queries spanning the budget spectrum.

    For each sampled pair the true cost range ``[min_cost, max_cost]``
    of its skyline frontier anchors four budget regimes: just below
    ``min_cost`` (infeasible), exactly ``min_cost`` (the boundary),
    uniform inside the range (the trade-off region), and above
    ``max_cost`` (unconstrained).  Pure function of
    ``(network, count, seed)``.
    """
    rng = random.Random(seed)
    n = network.num_vertices
    cases: list[CSPQuery] = []
    while len(cases) < count:
        s = rng.randrange(n)
        t = rng.randrange(n)
        if s == t:
            continue
        frontier = skyline_between(network, s, t)
        costs = [entry[1] for entry in frontier]
        lo, hi = min(costs), max(costs)
        regime = len(cases) % 4
        if regime == 0:
            budget = max(0.0, lo - 1)
        elif regime == 1:
            budget = lo
        elif regime == 2:
            budget = rng.uniform(lo, hi) if hi > lo else lo
        else:
            budget = hi * 1.5 + 1
        cases.append(CSPQuery(s, t, budget))
    return cases


def engines_under_test(index: QHLIndex, cache_size: int = 32) -> list:
    """Every label-based engine plus the index-free ladder floor.

    ``flat_engine`` answers over the packed column representation
    (:class:`~repro.core.flat.FlatQHLEngine`), so every differential
    run also diffs flat-vs-object answers.
    """
    return [
        index.qhl_engine(),
        index.qhl_engine(use_pruning_conditions=False),
        index.flat_engine(),
        index.cached_engine(cache_size),
        index.csp2hop_engine(),
        SkyDijkstraEngine(index.network),
    ]


def answer(result) -> tuple:
    return (result.feasible, result.weight, result.cost)


def run_differential(
    network,
    queries: list[CSPQuery],
    index: QHLIndex | None = None,
    cache_size: int = 32,
) -> list[Disagreement]:
    """Diff every engine against the constrained-Dijkstra reference.

    The cached engine is queried *twice* per case (cold then hot), so
    the hit path — binary search over a cached frontier — is diffed
    against the reference too, not just the miss path that computed it.
    """
    if index is None:
        index = QHLIndex.build(network, num_index_queries=100, seed=17)
    engines = engines_under_test(index, cache_size=cache_size)
    disagreements: list[Disagreement] = []
    for query in queries:
        s, t, c = query
        want = answer(constrained_dijkstra(network, s, t, c))
        for engine in engines:
            repeats = 2 if engine.name == "QHL+cache" else 1
            for _ in range(repeats):
                got = answer(engine.query(s, t, c))
                if got != want:
                    disagreements.append(
                        Disagreement(engine.name, query, got, want)
                    )
    return disagreements


def format_disagreements(disagreements: list[Disagreement]) -> str:
    return "\n".join(str(d) for d in disagreements[:20])
