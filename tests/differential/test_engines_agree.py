"""Seed-pinned differential suite over three graph families.

Each family contributes ~70 queries (``REPRO_DIFF_QUERIES`` overrides),
so a default run diffs 200+ queries — every engine (QHL with and without
pruning conditions, QHL-flat over packed columns, QHL+cache cold *and*
hot, CSP-2Hop, SkyDijkstra) against the constrained-Dijkstra reference
on ``(feasible, weight, cost)``.
"""

from __future__ import annotations

import pytest

from repro.graph import (
    grid_network,
    random_connected_network,
    ring_network,
)

from tests.differential.harness import (
    format_disagreements,
    generate_cases,
    query_count,
    run_differential,
)

FAMILIES = {
    "grid": lambda: grid_network(6, 6, seed=21),
    "ring": lambda: ring_network(
        num_towns=4, town_rows=3, town_cols=3, seed=22
    ),
    "random": lambda: random_connected_network(40, 60, seed=23),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_all_engines_agree(family):
    network = FAMILIES[family]()
    queries = generate_cases(network, query_count(70), seed=100 + ord(family[0]))
    disagreements = run_differential(network, queries)
    assert not disagreements, (
        f"{len(disagreements)} disagreement(s) on {family}:\n"
        + format_disagreements(disagreements)
    )


def test_case_generation_is_seed_pinned():
    network = grid_network(4, 4, seed=21)
    assert generate_cases(network, 12, seed=5) == generate_cases(
        network, 12, seed=5
    )
    assert generate_cases(network, 12, seed=5) != generate_cases(
        network, 12, seed=6
    )


def test_case_generation_covers_all_regimes():
    network = grid_network(4, 4, seed=21)
    queries = generate_cases(network, 40, seed=5)
    assert len(queries) == 40
    assert all(q.source != q.target for q in queries)
    from repro.baselines import constrained_dijkstra

    outcomes = {
        constrained_dijkstra(network, *q).feasible for q in queries
    }
    assert outcomes == {True, False}, "budgets never crossed feasibility"


def test_query_count_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_DIFF_QUERIES", "7")
    assert query_count(70) == 7
    monkeypatch.delenv("REPRO_DIFF_QUERIES")
    assert query_count(70) == 70
