"""Flat-vs-object engine parity beyond plain answers.

The seed-pinned families (``test_engines_agree``) and the hypothesis
property test already diff ``FlatQHLEngine`` answers — including
infeasible rows — against the constrained-Dijkstra reference through
``engines_under_test``.  This module pins the parity cases a
reference-diff cannot see:

* deadline behaviour — an expired deadline raises
  :class:`DeadlineExceededError` from both engines, never a late or
  partial answer from just one;
* an mmap-loaded flat index answers bit-identically to the object
  index its file came from (the full save → mmap-load → query cycle,
  not just in-memory packing);
* exact type parity — integral answers come back as ints from both
  engines, so golden-file comparisons cannot drift through a float
  representation.
"""

from __future__ import annotations

import os

import pytest

from repro.core.flat import FlatIndex
from repro.exceptions import DeadlineExceededError, ReproError
from repro.graph import grid_network
from repro.service.deadline import Deadline
from repro.storage import load_flat_index, save_flat_index

from tests.differential.harness import answer, generate_cases

from repro.core import QHLIndex


@pytest.fixture(scope="module")
def index():
    return QHLIndex.build(
        grid_network(6, 6, seed=21), num_index_queries=100, seed=17
    )


@pytest.fixture(scope="module")
def cases(index):
    return generate_cases(index.network, 60, seed=207)


def test_expired_deadline_raises_from_both_engines(index):
    for engine in (index.qhl_engine(), index.flat_engine()):
        with pytest.raises(DeadlineExceededError):
            engine.query(0, 35, 100, deadline=Deadline(0.0))


def test_generous_deadline_answers_from_both_engines(index):
    obj = index.qhl_engine().query(0, 35, 100, deadline=Deadline(60.0))
    flat = index.flat_engine().query(0, 35, 100, deadline=Deadline(60.0))
    assert answer(obj) == answer(flat)


def test_mmap_loaded_index_matches_object_answers(index, cases, tmp_path):
    path = os.fspath(tmp_path / "grid.qflat")
    save_flat_index(index, path)
    flat = load_flat_index(path)
    obj_engine = index.qhl_engine()
    flat_engine = flat.qhl_engine()
    infeasible = 0
    for s, t, c in cases:
        want = answer(obj_engine.query(s, t, c))
        assert answer(flat_engine.query(s, t, c)) == want
        infeasible += not want[0]
    assert infeasible > 0, "case generation lost its infeasible regime"


def test_flat_answers_are_exact_ints_on_integer_networks(index, cases):
    flat = index.flat_engine()
    obj = index.qhl_engine()
    for s, t, c in cases:
        got = flat.query(s, t, c)
        want = obj.query(s, t, c)
        if want.feasible:
            assert type(got.weight) is type(want.weight)
            assert type(got.cost) is type(want.cost)


def test_flat_engine_refuses_path_retrieval(index):
    flat = index.flat_engine()
    result = flat.query(0, 35, 100)
    assert result.feasible
    with pytest.raises(ReproError, match="provenance"):
        flat.query(0, 35, 100, want_path=True)


def test_query_many_matches_single_queries(index, cases):
    flat = index.flat_engine()
    batch = flat.query_many([(s, t, c) for s, t, c in cases])
    for (s, t, c), got in zip(cases, batch):
        assert answer(got) == answer(flat.query(s, t, c))


def test_from_index_shares_everything_but_labels(index):
    flat = FlatIndex.from_index(index)
    assert flat.tree is index.tree
    assert flat.lca is index.lca
    assert flat.pruning is index.pruning
    assert flat.labels.num_entries() == sum(
        len(entries) for _, _, entries in index.labels.items()
    )
