"""Property-based differential check on tiny random networks.

Hypothesis drives the *graph shape* (vertex count, extra edges, seed)
rather than raw edge lists — every generated network is connected by
construction, and shrinking walks toward the smallest graph family
member that still disagrees.  Derandomised so CI runs are reproducible.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graph import random_connected_network

from tests.differential.harness import generate_cases, run_differential


@settings(max_examples=20, deadline=None, derandomize=True)
@given(
    num_vertices=st.integers(min_value=4, max_value=12),
    extra_edges=st.integers(min_value=0, max_value=10),
    graph_seed=st.integers(min_value=0, max_value=2**16),
    query_seed=st.integers(min_value=0, max_value=2**16),
)
def test_engines_agree_on_tiny_networks(
    num_vertices, extra_edges, graph_seed, query_seed
):
    network = random_connected_network(
        num_vertices, extra_edges, seed=graph_seed
    )
    queries = generate_cases(network, 8, seed=query_seed)
    disagreements = run_differential(network, queries, cache_size=4)
    assert not disagreements, "\n".join(str(d) for d in disagreements)
