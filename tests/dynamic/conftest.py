"""Shared fixtures for the live-update / epoch suite.

The network and index-query set are session-scoped and deterministic;
every test that mutates an index builds its own
:class:`~repro.dynamic.DynamicQHLIndex` from them.
"""

from __future__ import annotations

import pytest

from repro.core import QHLIndex, random_index_queries
from repro.dynamic import DynamicQHLIndex
from repro.graph import RoadNetwork, random_connected_network


@pytest.fixture(scope="session")
def update_net():
    return random_connected_network(25, 20, seed=8)


@pytest.fixture(scope="session")
def update_queries(update_net):
    return random_index_queries(update_net, 150, seed=8)


@pytest.fixture()
def dyn(update_net, update_queries):
    """A freshly built dynamic index (mutable, per-test)."""
    return DynamicQHLIndex.build(
        update_net, index_queries=update_queries, seed=0
    )


@pytest.fixture()
def build_dyn(update_net, update_queries):
    """A factory for more copies of the same deterministic build."""

    def _build() -> DynamicQHLIndex:
        return DynamicQHLIndex.build(
            update_net, index_queries=update_queries, seed=0
        )

    return _build


@pytest.fixture()
def fresh_index(update_net, update_queries):
    """A factory: the from-scratch index over given edge metrics.

    The bit-identity oracle — a repaired/replayed index must pack to
    the same bytes as a fresh build over the final network.
    """

    def _build(edges) -> QHLIndex:
        net = RoadNetwork.from_edges(update_net.num_vertices, edges)
        return QHLIndex.build(net, index_queries=update_queries, seed=0)

    return _build
