"""Regression: the skyline cache must not outlive the labels it read.

The stale-answer bug this pins down: a :class:`CachedQHLEngine` holds
full s-t frontiers derived from the label store; a dynamic repair
rewrites labels *in place*, and before the coherence guard the cache
kept serving pre-update frontiers — silently wrong pairs.
"""

from __future__ import annotations

from repro.baselines import constrained_dijkstra
from repro.graph import RoadNetwork
from repro.perf.cache import SkylineCache


def current_truth(dyn, s, t, budget):
    net = RoadNetwork.from_edges(
        dyn.index.network.num_vertices, dyn.network_edges()
    )
    return constrained_dijkstra(net, s, t, budget, want_path=False).pair()


class TestLabelVersion:
    def test_noop_update_does_not_bump_the_version(self, dyn):
        _u, _v, w, c = dyn.network_edges()[3]
        before = dyn.index.labels.version
        dyn.update_edge(3, weight=w, cost=c)
        assert dyn.index.labels.version == before

    def test_label_changing_update_bumps_the_version(self, dyn):
        before = dyn.index.labels.version
        report = dyn.update_edge(3, weight=999.0, cost=999.0)
        assert report.labels_changed > 0
        assert dyn.index.labels.version > before


class TestCachedEngineCoherence:
    def test_cached_answers_stay_exact_across_updates(self, dyn):
        """The regression proper: warm cache, mutate labels, re-query."""
        cached = dyn.index.cached_engine(64)
        queries = [(0, 24, 500), (2, 19, 300), (5, 13, 400)]
        for s, t, budget in queries:
            cached.query(s, t, budget)  # warm (pre-update frontiers)
        dyn.update_edge(3, weight=999.0, cost=999.0)
        dyn.update_edge(7, weight=1.0, cost=1.0)
        for s, t, budget in queries:
            assert cached.query(s, t, budget).pair() == current_truth(
                dyn, s, t, budget
            ), "cached engine served a pre-update frontier"

    def test_update_invalidates_exactly_once(self, dyn):
        cached = dyn.index.cached_engine(64)
        cached.query(0, 24, 500)
        assert len(cached.cache) == 1
        dyn.update_edge(3, weight=999.0)
        cached.query(0, 24, 500)
        cached.query(2, 19, 300)
        stats = cached.cache.stats()
        assert stats.invalidations == 1
        assert stats.entries == 2

    def test_frontier_path_is_also_guarded(self, dyn):
        cached = dyn.index.cached_engine(64)
        cached.frontier(0, 24)
        report = dyn.update_edge(3, weight=999.0, cost=999.0)
        assert report.labels_changed > 0
        fresh = cached.frontier(0, 24)
        plain = dyn.index.cached_engine(64).frontier(0, 24)
        assert [e[:2] for e in fresh] == [e[:2] for e in plain]
        # The pre-update entry was dropped, not refreshed in place.
        assert cached.cache.stats().invalidations == 1


class TestInvalidateAll:
    def test_drops_entries_and_counts(self):
        cache = SkylineCache(capacity=8)
        cache.put(0, 1, [(1.0, 2.0)])
        cache.put(2, 3, [(3.0, 4.0)])
        dropped = cache.invalidate_all()
        assert dropped == 2
        assert len(cache) == 0
        assert cache.get(0, 1) is None
        assert cache.stats().invalidations == 1

    def test_counters_survive_invalidation(self):
        cache = SkylineCache(capacity=8)
        cache.put(0, 1, [(1.0, 2.0)])
        cache.get(0, 1)
        cache.invalidate_all()
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.entries == 0
