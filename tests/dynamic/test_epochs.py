"""Epoch lifecycle chaos: rollback on any failure, replay converges.

The ISSUE acceptance matrix: with faults injected at each of
``update-journal-append`` / ``update-repair`` / ``update-publish``,
queries keep answering *correctly from the old epoch*, the journal
replay converges, and the final index is bit-identical on
``pack_labels`` to a fresh build over the final edge metrics.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.baselines import constrained_dijkstra
from repro.dynamic import EdgeDelta, EpochManager, UpdateConfig
from repro.dynamic.journal import UpdateJournal
from repro.exceptions import (
    InvalidGraphError,
    UpdateFailedError,
    UpdateJournalError,
)
from repro.graph import RoadNetwork
from repro.observability.metrics import MetricsRegistry, use_registry
from repro.observability.propagation import reap_stale_spools
from repro.service.faults import FaultInjector, use_injector
from repro.storage.compact import pack_labels
from repro.supervise.incidents import IncidentLog, use_incident_log

QUERY = (0, 24, 500)

#: One manager-level config shared by most tests: no audit (covered
#: separately; it triples the apply cost) and no startup reap (the
#: tests own their temp dirs).
FAST = UpdateConfig(
    audit_on_publish=False, reap_stale=False, replay_on_start=False
)


def ground_truth(manager_or_edges, s, t, budget):
    """The exact CSP answer over the given edge list / manager epoch."""
    edges = (
        manager_or_edges
        if isinstance(manager_or_edges, list)
        else manager_or_edges.epoch.dyn.network_edges()
    )
    num_vertices = max(max(u, v) for u, v, _w, _c in edges) + 1
    net = RoadNetwork.from_edges(num_vertices, edges)
    return constrained_dijkstra(net, s, t, budget, want_path=False).pair()


class TestPublishLifecycle:
    def test_apply_advances_the_epoch(self, dyn, tmp_path):
        manager = EpochManager(dyn, str(tmp_path), FAST)
        assert manager.epoch.id == 0
        manager.apply([EdgeDelta(3, 55.0, None)])
        assert manager.epoch.id == 1
        assert manager.backlog() == 0
        assert manager.journal.published_seq() == 1

    def test_queries_match_ground_truth_after_each_epoch(
        self, dyn, tmp_path
    ):
        manager = EpochManager(dyn, str(tmp_path), FAST)
        rng = random.Random(4)
        for _ in range(3):
            manager.apply([
                EdgeDelta(
                    rng.randrange(dyn.index.network.num_edges),
                    float(rng.randint(1, 40)),
                    float(rng.randint(1, 40)),
                )
            ])
            s, t, budget = QUERY
            assert manager.query(s, t, budget).pair() == ground_truth(
                manager, s, t, budget
            )

    def test_readers_holding_the_old_epoch_stay_consistent(
        self, dyn, tmp_path
    ):
        manager = EpochManager(dyn, str(tmp_path), FAST)
        old = manager.epoch
        s, t, budget = QUERY
        before = old.query(s, t, budget).pair()
        manager.apply([EdgeDelta(3, 999.0, 999.0)])
        # The swapped-out epoch still answers its own (pre-update)
        # version — a reader mid-request never sees a half repair.
        assert old.query(s, t, budget).pair() == before
        assert manager.epoch is not old

    def test_batched_deltas_publish_as_one_epoch(self, dyn, tmp_path):
        manager = EpochManager(dyn, str(tmp_path), FAST)
        report = manager.apply([
            EdgeDelta(0, 11.0, None),
            EdgeDelta(1, None, 12.0),
            EdgeDelta(2, 13.0, 14.0),
        ])
        assert report.edges_applied == 3
        assert manager.epoch.id == 1
        assert manager.epoch.dyn.network_edges()[2][2:] == (13.0, 14.0)

    def test_per_epoch_cache_serves_fresh_answers(self, dyn, tmp_path):
        manager = EpochManager(
            dyn,
            str(tmp_path),
            UpdateConfig(
                cache_size=64, audit_on_publish=False,
                reap_stale=False, replay_on_start=False,
            ),
        )
        s, t, budget = QUERY
        manager.query(s, t, budget)  # warm the epoch-0 cache
        manager.apply([EdgeDelta(3, 77.0, 3.0)])
        # The new epoch carries a fresh cache: no pre-update frontier
        # can leak through the swap.
        assert manager.query(s, t, budget).pair() == ground_truth(
            manager, s, t, budget
        )

    def test_flat_twin_publishes_and_old_dir_is_reclaimed(
        self, dyn, tmp_path
    ):
        manager = EpochManager(
            dyn,
            str(tmp_path),
            UpdateConfig(
                flat=True, audit_on_publish=False,
                reap_stale=False, replay_on_start=False,
            ),
        )
        old_dir = manager.epoch.flat_dir
        assert old_dir is not None and os.path.isdir(old_dir)
        s, t, budget = QUERY
        manager.apply([EdgeDelta(3, 21.0, None)])
        assert manager.query(s, t, budget).pair() == ground_truth(
            manager, s, t, budget
        )
        assert not os.path.exists(old_dir)
        manager.close()
        assert not os.path.exists(manager.epoch.flat_dir or "")


class TestChaosMatrix:
    """Faults at every update injection point, rollback, convergence."""

    @pytest.mark.parametrize("point", ["update-repair", "update-publish"])
    def test_fault_rolls_back_and_replay_converges(
        self, dyn, tmp_path, fresh_index, point
    ):
        manager = EpochManager(dyn, str(tmp_path), FAST)
        s, t, budget = QUERY
        before_edges = manager.epoch.dyn.network_edges()
        before = ground_truth(before_edges, s, t, budget)
        incidents = IncidentLog()
        injector = FaultInjector()
        injector.fail(point, exc=RuntimeError, times=1)
        with use_incident_log(incidents), use_injector(injector):
            with pytest.raises(UpdateFailedError) as excinfo:
                manager.apply([EdgeDelta(3, 64.0, 8.0)])
        # Rolled back: the old epoch serves, the batch stays pending.
        assert manager.epoch.id == 0
        assert manager.query(s, t, budget).pair() == before
        assert manager.backlog() == 1
        assert excinfo.value.seq == 1
        kinds = [i.kind for i in incidents.records()]
        assert "update-rollback" in kinds
        # Replay (no fault this time) converges to the repaired index.
        assert manager.replay() == 1
        assert manager.backlog() == 0
        assert manager.epoch.id == 1
        assert manager.query(s, t, budget).pair() == ground_truth(
            manager, s, t, budget
        )
        fresh = fresh_index(manager.epoch.dyn.network_edges())
        assert pack_labels(manager.epoch.dyn.index.labels) == pack_labels(
            fresh.labels
        )

    def test_journal_append_fault_never_acknowledges(
        self, dyn, tmp_path
    ):
        manager = EpochManager(dyn, str(tmp_path), FAST)
        s, t, budget = QUERY
        before = manager.query(s, t, budget).pair()
        injector = FaultInjector()
        injector.fail(
            "update-journal-append", exc=OSError, times=1,
            match={"stage": "write"},
        )
        with use_injector(injector):
            with pytest.raises(UpdateJournalError):
                manager.apply([EdgeDelta(3, 64.0, None)])
        # Nothing was acknowledged: no pending work, nothing to replay.
        assert manager.journal.last_seq() == 0
        assert manager.backlog() == 0
        assert manager.replay() == 0
        assert manager.query(s, t, budget).pair() == before

    def test_fault_reasons_are_staged(self, dyn, tmp_path):
        manager = EpochManager(dyn, str(tmp_path), FAST)
        injector = FaultInjector()
        injector.fail("update-repair", exc=RuntimeError, times=1)
        with use_injector(injector):
            with pytest.raises(UpdateFailedError) as excinfo:
                manager.apply([EdgeDelta(0, 9.0, None)])
        assert excinfo.value.reason == "repair"
        injector = FaultInjector()
        injector.fail("update-publish", exc=OSError, times=1)
        with use_injector(injector):
            with pytest.raises(UpdateFailedError) as excinfo:
                manager.replay()
        assert excinfo.value.reason == "publish"

    def test_repeated_faults_then_replay_bit_identical(
        self, dyn, tmp_path, fresh_index
    ):
        """A storm: every batch fails once before publishing."""
        manager = EpochManager(dyn, str(tmp_path), FAST)
        deltas = [
            [EdgeDelta(3, 40.0, None)],
            [EdgeDelta(7, None, 25.0)],
            [EdgeDelta(11, 18.0, 6.0)],
        ]
        for i, batch in enumerate(deltas):
            point = "update-repair" if i % 2 == 0 else "update-publish"
            injector = FaultInjector()
            injector.fail(point, exc=RuntimeError, times=1)
            with use_injector(injector):
                with pytest.raises(UpdateFailedError):
                    manager.apply(batch)
            assert manager.replay() == 1
        assert manager.epoch.id == 3
        fresh = fresh_index(manager.epoch.dyn.network_edges())
        assert pack_labels(manager.epoch.dyn.index.labels) == pack_labels(
            fresh.labels
        )

    def test_audit_gate_blocks_a_bad_publish(
        self, dyn, tmp_path, monkeypatch
    ):
        class DoomedAudit:
            ok = False

            @staticmethod
            def failed_checks():
                return ["query-ground-truth"]

        monkeypatch.setattr(
            "repro.dynamic.epochs.audit_index",
            lambda *a, **k: DoomedAudit,
        )
        manager = EpochManager(
            dyn,
            str(tmp_path),
            UpdateConfig(reap_stale=False, replay_on_start=False),
        )
        with pytest.raises(UpdateFailedError) as excinfo:
            manager.apply([EdgeDelta(3, 33.0, None)])
        assert excinfo.value.reason == "audit"
        assert "query-ground-truth" in str(excinfo.value)
        assert manager.epoch.id == 0
        assert manager.backlog() == 1

    def test_audit_gate_passes_a_good_publish(self, dyn, tmp_path):
        manager = EpochManager(
            dyn,
            str(tmp_path),
            UpdateConfig(
                audit_queries=4, reap_stale=False, replay_on_start=False
            ),
        )
        manager.apply([EdgeDelta(3, 33.0, None)])
        assert manager.epoch.id == 1

    def test_repair_deadline_rolls_back(self, dyn, tmp_path):
        ticks = iter(range(0, 10_000, 100))  # 100 s per reading

        manager = EpochManager(
            dyn,
            str(tmp_path),
            UpdateConfig(
                audit_on_publish=False, max_repair_seconds=1.0,
                reap_stale=False, replay_on_start=False,
            ),
            clock=lambda: float(next(ticks)),
        )
        with pytest.raises(UpdateFailedError) as excinfo:
            manager.apply([EdgeDelta(3, 12.0, None)])
        assert excinfo.value.reason == "deadline"
        assert manager.epoch.id == 0
        assert manager.backlog() == 1

    def test_rollback_metrics_and_gauges(self, dyn, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            manager = EpochManager(dyn, str(tmp_path), FAST)
            injector = FaultInjector()
            injector.fail("update-repair", exc=RuntimeError, times=1)
            with use_injector(injector):
                with pytest.raises(UpdateFailedError):
                    manager.apply([EdgeDelta(3, 50.0, None)])
            assert registry.counter(
                "update_rollbacks_total", {"reason": "repair"}
            ).value == 1
            assert registry.gauge("update_backlog").value == 1
            manager.replay()
            assert registry.gauge("update_epoch").value == 1
            assert registry.gauge("update_backlog").value == 0
            assert registry.counter(
                "update_batches_total", {"status": "published"}
            ).value == 1
            assert registry.counter("update_edges_total").value == 1
            assert registry.histogram(
                "update_repair_seconds"
            ).count == 1


class TestValidationAndQuarantine:
    """Bad batches are refused *before* durable acknowledgement; a bad
    record that nevertheless reaches the journal (written by foreign
    code) is quarantined on replay instead of bricking startup."""

    def test_invalid_batch_is_refused_before_journalling(
        self, dyn, tmp_path
    ):
        manager = EpochManager(dyn, str(tmp_path), FAST)
        with pytest.raises(InvalidGraphError):
            manager.apply([EdgeDelta(10**6, 5.0, None)])
        with pytest.raises(InvalidGraphError):
            manager.apply([EdgeDelta(0, -1.0, None)])
        with pytest.raises(InvalidGraphError):
            manager.apply([EdgeDelta(0, None, 0.0)])
        # Never acknowledged: nothing pending, nothing to replay.
        assert manager.journal.last_seq() == 0
        assert manager.backlog() == 0
        assert manager.replay() == 0

    def test_foreign_bad_batch_is_quarantined_on_replay(
        self, dyn, tmp_path
    ):
        # A journal this code did not write: an unrepairable batch,
        # then a good one behind it.
        journal = UpdateJournal(str(tmp_path))
        journal.append([EdgeDelta(10**6, 5.0, None)], ts=0.0)
        journal.append([EdgeDelta(3, 44.0, None)], ts=1.0)
        incidents = IncidentLog()
        with use_incident_log(incidents):
            # replay_on_start=True must NOT raise — one bad record
            # would otherwise abort every restart forever.
            manager = EpochManager(
                dyn,
                str(tmp_path),
                UpdateConfig(audit_on_publish=False, reap_stale=False),
            )
        assert manager.epoch.id == 2
        assert manager.backlog() == 0
        assert manager.epoch.dyn.network_edges()[3][2] == 44.0
        kinds = [i.kind for i in incidents.records()]
        assert "update-quarantined" in kinds
        # The skip is durable: a restart does not re-trip on it.
        assert manager.journal.published_seq() == 2

    def test_live_network_skips_an_unrepairable_pending_batch(
        self, dyn, tmp_path
    ):
        journal = UpdateJournal(str(tmp_path))
        journal.append([EdgeDelta(10**6, 5.0, None)], ts=0.0)
        manager = EpochManager(dyn, str(tmp_path), FAST)  # no replay
        live = manager.live_network()  # must not IndexError
        assert live.num_vertices == dyn.index.network.num_vertices


class TestRecoveryAndStaleness:
    def test_restart_replays_acknowledged_unpublished_batches(
        self, dyn, tmp_path, build_dyn, fresh_index
    ):
        manager = EpochManager(dyn, str(tmp_path), FAST)
        manager.apply([EdgeDelta(3, 44.0, None)])  # published
        injector = FaultInjector()
        injector.fail("update-publish", exc=RuntimeError, times=1)
        with use_injector(injector):
            with pytest.raises(UpdateFailedError):
                manager.apply([EdgeDelta(9, None, 17.0)])  # pending
        # "Restart": a new process rebuilds from the ORIGINAL network,
        # so base_seq=0 re-applies every batch; absolute deltas make
        # the over-replay of batch 1 idempotent.
        restarted = EpochManager(
            build_dyn(),
            str(tmp_path),
            UpdateConfig(audit_on_publish=False, reap_stale=False),
            base_seq=0,
        )
        assert restarted.epoch.id == 2
        assert restarted.backlog() == 0
        assert restarted.journal.published_seq() == 2
        final_edges = restarted.epoch.dyn.network_edges()
        assert final_edges[3][2] == 44.0
        assert final_edges[9][3] == 17.0
        fresh = fresh_index(final_edges)
        assert pack_labels(
            restarted.epoch.dyn.index.labels
        ) == pack_labels(fresh.labels)

    def test_torn_journal_logs_an_incident(self, dyn, tmp_path):
        from repro.dynamic.journal import JOURNAL_NAME

        manager = EpochManager(dyn, str(tmp_path), FAST)
        manager.apply([EdgeDelta(3, 44.0, None)])
        path = os.path.join(str(tmp_path), JOURNAL_NAME)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-10])
        incidents = IncidentLog()
        with use_incident_log(incidents):
            EpochManager(dyn, str(tmp_path), FAST)
        kinds = [i.kind for i in incidents.records()]
        assert "update-journal-torn" in kinds

    def test_staleness_tracks_the_oldest_pending_batch(
        self, dyn, tmp_path
    ):
        now = [100.0]
        manager = EpochManager(
            dyn, str(tmp_path), FAST, clock=lambda: now[0]
        )
        assert manager.staleness_seconds() == 0.0
        injector = FaultInjector()
        injector.fail("update-publish", exc=RuntimeError, times=1)
        with use_injector(injector):
            with pytest.raises(UpdateFailedError):
                manager.apply([EdgeDelta(3, 19.0, None)])
        now[0] = 107.5
        assert manager.staleness_seconds() == pytest.approx(7.5)
        assert manager.backlog() == 1
        manager.replay()
        assert manager.staleness_seconds() == 0.0

    def test_live_network_sees_pending_deltas(self, dyn, tmp_path):
        manager = EpochManager(dyn, str(tmp_path), FAST)
        injector = FaultInjector()
        injector.fail("update-publish", exc=RuntimeError, times=1)
        with use_injector(injector):
            with pytest.raises(UpdateFailedError):
                manager.apply([EdgeDelta(5, 123.0, 77.0)])
        # The serving epoch lags; the live network does not.
        assert manager.epoch.dyn.network_edges()[5][2:] != (123.0, 77.0)
        live = manager.live_network()
        assert list(live.edges())[5][2:] == (123.0, 77.0)
        manager.replay()
        assert list(manager.live_network().edges())[5][2:] == (123.0, 77.0)

    def test_stale_epoch_dirs_are_reaped(self, tmp_path):
        stale = tmp_path / "qhl-epoch-deadbeef"
        stale.mkdir()
        old = time.time() - 7200.0
        os.utime(stale, (old, old))
        fresh = tmp_path / "qhl-epoch-live"
        fresh.mkdir()
        reaped = reap_stale_spools(max_age_s=3600, root=str(tmp_path))
        assert str(stale) in reaped
        assert not stale.exists()
        assert fresh.exists()

    def test_live_owner_epoch_dir_is_never_reaped(self, tmp_path):
        # Flat twins are written once and mmap-read: an epoch serving
        # for hours looks "stale" by mtime while very much alive.  The
        # pid embedded in the name is what keeps the reaper off it.
        mine = tmp_path / f"qhl-epoch-{os.getpid()}-flat"
        mine.mkdir()
        old = time.time() - 7200.0
        os.utime(mine, (old, old))
        reaped = reap_stale_spools(max_age_s=3600, root=str(tmp_path))
        assert reaped == []
        assert mine.exists()

    def test_dead_owner_epoch_dir_is_reaped(self, tmp_path):
        import subprocess
        import sys

        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        orphan = tmp_path / f"qhl-epoch-{proc.pid}-flat"
        orphan.mkdir()
        old = time.time() - 7200.0
        os.utime(orphan, (old, old))
        reaped = reap_stale_spools(max_age_s=3600, root=str(tmp_path))
        assert str(orphan) in reaped
        assert not orphan.exists()
