"""Unit tests for the crash-safe update journal."""

from __future__ import annotations

import json
import os

import pytest

from repro.dynamic import EdgeDelta, UpdateJournal
from repro.dynamic.journal import JOURNAL_NAME, PUBLISHED_NAME
from repro.exceptions import UpdateJournalError
from repro.service.faults import FaultInjector, use_injector


def journal_file(journal: UpdateJournal) -> str:
    return os.path.join(journal.directory, JOURNAL_NAME)


class TestAppendAndReload:
    def test_sequences_are_monotone_from_one(self, tmp_path):
        journal = UpdateJournal(str(tmp_path))
        r1 = journal.append([EdgeDelta(3, 5.0, None)], ts=1.0)
        r2 = journal.append([(7, None, 2.0), (8, 1.0, 1.0)], ts=2.0)
        assert (r1.seq, r2.seq) == (1, 2)
        assert journal.last_seq() == 2

    def test_records_survive_reopen(self, tmp_path):
        journal = UpdateJournal(str(tmp_path))
        journal.append([EdgeDelta(3, 5.0, None)], ts=1.0)
        journal.append([EdgeDelta(4, None, 9.0)], ts=2.0)
        reopened = UpdateJournal(str(tmp_path))
        assert reopened.torn_lines == 0
        got = list(reopened.records())
        assert [r.seq for r in got] == [1, 2]
        assert got[0].deltas == (EdgeDelta(3, 5.0, None),)
        assert got[1].deltas == (EdgeDelta(4, None, 9.0),)

    def test_tuples_normalise_to_edge_deltas(self, tmp_path):
        journal = UpdateJournal(str(tmp_path))
        record = journal.append([(5, 1.5, None)], ts=0.0)
        assert record.deltas == (EdgeDelta(5, 1.5, None),)

    def test_unwritable_directory_is_typed(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.raises(UpdateJournalError):
            UpdateJournal(str(blocker / "journal"))


class TestTornTailRecovery:
    def _journal_with(self, tmp_path, batches=3) -> UpdateJournal:
        journal = UpdateJournal(str(tmp_path))
        for i in range(batches):
            journal.append([EdgeDelta(i, float(i + 1), None)], ts=float(i))
        return journal

    def test_truncated_last_line_is_dropped(self, tmp_path):
        journal = self._journal_with(tmp_path)
        path = journal_file(journal)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-20])  # tear the tail mid-record
        reopened = UpdateJournal(str(tmp_path))
        assert reopened.torn_lines == 1
        assert reopened.last_seq() == 2

    def test_bitflip_invalidates_checksum(self, tmp_path):
        journal = self._journal_with(tmp_path)
        path = journal_file(journal)
        lines = open(path, "rb").read().splitlines()
        record = json.loads(lines[-1])
        record["deltas"][0][1] = 999.0  # metric changed, sha stale
        lines[-1] = json.dumps(record, sort_keys=True).encode()
        open(path, "wb").write(b"\n".join(lines) + b"\n")
        reopened = UpdateJournal(str(tmp_path))
        assert reopened.torn_lines == 1
        assert reopened.last_seq() == 2

    def test_everything_after_the_tear_is_dropped(self, tmp_path):
        journal = self._journal_with(tmp_path, batches=4)
        path = journal_file(journal)
        lines = open(path, "rb").read().splitlines()
        lines[1] = b"{ garbage"
        open(path, "wb").write(b"\n".join(lines) + b"\n")
        reopened = UpdateJournal(str(tmp_path))
        # Line 2 tore; lines 3-4 are unreachable even though they parse
        # (their sequence chain is broken).
        assert reopened.torn_lines == 3
        assert reopened.last_seq() == 1

    def test_good_prefix_is_rewritten_atomically(self, tmp_path):
        journal = self._journal_with(tmp_path)
        path = journal_file(journal)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-20])
        UpdateJournal(str(tmp_path))
        # A second open sees a clean two-record file: no tear remains.
        again = UpdateJournal(str(tmp_path))
        assert again.torn_lines == 0
        assert again.last_seq() == 2

    def test_nonmonotone_sequence_is_a_tear(self, tmp_path):
        journal = self._journal_with(tmp_path, batches=2)
        path = journal_file(journal)
        data = open(path, "rb").read()
        open(path, "ab").write(data.splitlines()[0] + b"\n")  # replay seq 1
        reopened = UpdateJournal(str(tmp_path))
        assert reopened.torn_lines == 1
        assert reopened.last_seq() == 2


class TestPublishedWatermark:
    def test_starts_at_zero(self, tmp_path):
        journal = UpdateJournal(str(tmp_path))
        assert journal.published_seq() == 0
        assert journal.pending() == []

    def test_pending_is_everything_above_the_watermark(self, tmp_path):
        journal = UpdateJournal(str(tmp_path))
        for i in range(3):
            journal.append([EdgeDelta(i, 1.0, None)], ts=float(i))
        journal.mark_published(1)
        assert journal.published_seq() == 1
        assert [r.seq for r in journal.pending()] == [2, 3]

    def test_watermark_is_monotone(self, tmp_path):
        journal = UpdateJournal(str(tmp_path))
        for i in range(3):
            journal.append([EdgeDelta(i, 1.0, None)], ts=float(i))
        journal.mark_published(3)
        journal.mark_published(1)  # a replayed old batch must not regress
        assert journal.published_seq() == 3

    def test_corrupt_watermark_reads_as_zero(self, tmp_path):
        journal = UpdateJournal(str(tmp_path))
        journal.append([EdgeDelta(0, 1.0, None)], ts=0.0)
        journal.mark_published(1)
        path = os.path.join(str(tmp_path), PUBLISHED_NAME)
        open(path, "wb").write(b"\x00garbage")
        # Recoverable: replay-from-zero converges (deltas are absolute).
        assert UpdateJournal(str(tmp_path)).published_seq() == 0


class TestInjectedAppendFaults:
    @pytest.mark.parametrize("stage", ["write", "fsync"])
    def test_fault_is_typed_and_batch_not_acknowledged(
        self, tmp_path, stage
    ):
        journal = UpdateJournal(str(tmp_path))
        journal.append([EdgeDelta(0, 1.0, None)], ts=0.0)
        injector = FaultInjector()
        injector.fail(
            "update-journal-append", exc=OSError, match={"stage": stage}
        )
        with use_injector(injector):
            with pytest.raises(UpdateJournalError):
                journal.append([EdgeDelta(1, 2.0, None)], ts=1.0)
        assert journal.last_seq() == 1

    def test_write_stage_fault_leaves_no_partial_line(self, tmp_path):
        journal = UpdateJournal(str(tmp_path))
        journal.append([EdgeDelta(0, 1.0, None)], ts=0.0)
        injector = FaultInjector()
        injector.fail(
            "update-journal-append", exc=OSError, match={"stage": "write"}
        )
        with use_injector(injector):
            with pytest.raises(UpdateJournalError):
                journal.append([EdgeDelta(1, 2.0, None)], ts=1.0)
        reopened = UpdateJournal(str(tmp_path))
        assert reopened.torn_lines == 0
        assert reopened.last_seq() == 1

    def test_append_retries_cleanly_after_fault(self, tmp_path):
        journal = UpdateJournal(str(tmp_path))
        injector = FaultInjector()
        injector.fail(
            "update-journal-append", exc=OSError, times=1,
            match={"stage": "write"},
        )
        with use_injector(injector):
            with pytest.raises(UpdateJournalError):
                journal.append([EdgeDelta(0, 1.0, None)], ts=0.0)
            record = journal.append([EdgeDelta(0, 1.0, None)], ts=0.5)
        assert record.seq == 1
        assert UpdateJournal(str(tmp_path)).last_seq() == 1

    def test_fsync_stage_fault_rolls_the_file_back(self, tmp_path):
        """A fault after write+flush must not leave the line on disk.

        Left in place, the unacknowledged seq-1 line would shadow the
        retried (acknowledged) seq-1 append: the retry becomes a
        duplicate-seq line that the next open truncates as a torn tail
        — silently dropping durable data.
        """
        journal = UpdateJournal(str(tmp_path))
        injector = FaultInjector()
        injector.fail(
            "update-journal-append", exc=OSError, times=1,
            match={"stage": "fsync"},
        )
        with use_injector(injector):
            with pytest.raises(UpdateJournalError):
                journal.append([EdgeDelta(0, 1.0, None)], ts=0.0)
            record = journal.append([EdgeDelta(0, 2.0, None)], ts=0.5)
        assert record.seq == 1
        reopened = UpdateJournal(str(tmp_path))
        assert reopened.torn_lines == 0
        records = list(reopened.records())
        assert len(records) == 1
        # The surviving record is the ACKNOWLEDGED one, not the failed
        # first attempt.
        assert records[0].deltas[0].weight == 2.0
