"""One real SIGKILL mid-update: acknowledged batches survive the kill.

A subprocess journals two batches, publishes the first, and is
SIGKILLed between the second batch's journal append and its publish
swap — no cleanup, no atexit, exactly what a power cut leaves behind.
The parent then "restarts": it rebuilds the index from the original
network and replays the journal, and the result must be bit-identical
on ``pack_labels`` to a fresh build over the final edge metrics.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap

from repro.core import QHLIndex, random_index_queries
from repro.dynamic import (
    DynamicQHLIndex,
    EpochManager,
    UpdateConfig,
    UpdateJournal,
)
from repro.graph import RoadNetwork, random_connected_network
from repro.storage.compact import pack_labels

_CHILD = textwrap.dedent(
    """
    import os, signal, sys

    from repro.core import random_index_queries
    from repro.dynamic import DynamicQHLIndex, EpochManager, UpdateConfig
    from repro.graph import random_connected_network
    from repro.service.faults import FaultInjector, set_injector

    journal_dir = sys.argv[1]

    g = random_connected_network(20, 16, seed=8)
    queries = random_index_queries(g, 100, seed=8)
    dyn = DynamicQHLIndex.build(g, index_queries=queries, seed=0)
    manager = EpochManager(
        dyn, journal_dir,
        UpdateConfig(audit_on_publish=False, reap_stale=False,
                     replay_on_start=False),
    )
    manager.apply([(3, 44.0, None)])   # batch 1: published cleanly

    def die():
        os.kill(os.getpid(), signal.SIGKILL)

    injector = FaultInjector()
    injector.fail("update-publish", exc=die, match={"seq": 2})
    set_injector(injector)
    manager.apply([(7, None, 17.0)])   # batch 2: killed pre-publish
    raise SystemExit("unreachable: the applier should have been killed")
    """
)


def test_sigkilled_apply_replays_to_bit_identical_index(tmp_path):
    journal_dir = str(tmp_path / "journal")
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "src"
    )
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, journal_dir],
        env=env,
        capture_output=True,
        timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

    # The kill left batch 2 acknowledged (durable) but unpublished.
    journal = UpdateJournal(journal_dir)
    assert journal.torn_lines == 0
    assert journal.last_seq() == 2
    assert journal.published_seq() == 1

    # "Restart": rebuild from the original network, replay everything
    # (base_seq=0 — absolute deltas make the over-replay idempotent).
    g = random_connected_network(20, 16, seed=8)
    queries = random_index_queries(g, 100, seed=8)
    dyn = DynamicQHLIndex.build(g, index_queries=queries, seed=0)
    manager = EpochManager(
        dyn,
        journal_dir,
        UpdateConfig(audit_on_publish=False, reap_stale=False),
        base_seq=0,
    )
    assert manager.epoch.id == 2
    assert manager.backlog() == 0
    assert manager.journal.published_seq() == 2

    edges = manager.epoch.dyn.network_edges()
    assert edges[3][2] == 44.0
    assert edges[7][3] == 17.0
    fresh = QHLIndex.build(
        RoadNetwork.from_edges(20, edges), index_queries=queries, seed=0
    )
    assert pack_labels(manager.epoch.dyn.index.labels) == pack_labels(
        fresh.labels
    )
