"""Unit tests for single-criterion graph algorithms."""

import pytest

from repro.exceptions import DisconnectedGraphError, InvalidGraphError
from repro.graph import (
    RoadNetwork,
    bfs_hops,
    connected_components,
    dijkstra,
    estimate_diameter,
    exact_diameter,
    shortest_distance,
    shortest_path,
)
from repro.graph.algorithms import (
    eccentricity,
    farthest_vertex,
    sample_connected_pair,
)

import random


def line_graph(n=5):
    """0 - 1 - ... - n-1 with weight 2 and cost 3 per edge."""
    g = RoadNetwork(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1, weight=2, cost=3)
    return g


class TestDijkstra:
    def test_cost_metric(self):
        dist = dijkstra(line_graph(), 0, metric="cost")
        assert dist == [0, 3, 6, 9, 12]

    def test_weight_metric(self):
        dist = dijkstra(line_graph(), 0, metric="weight")
        assert dist == [0, 2, 4, 6, 8]

    def test_unknown_metric_rejected(self):
        with pytest.raises(InvalidGraphError):
            dijkstra(line_graph(), 0, metric="length")

    def test_unreachable_is_inf(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=1)
        assert dijkstra(g, 0)[2] == float("inf")

    def test_early_stop_covers_targets(self):
        g = line_graph(6)
        dist = dijkstra(g, 0, targets=[2])
        assert dist[2] == 6

    def test_takes_cheaper_route(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=10)
        g.add_edge(1, 2, weight=1, cost=10)
        g.add_edge(0, 2, weight=9, cost=5)
        assert dijkstra(g, 0, metric="cost")[2] == 5
        assert dijkstra(g, 0, metric="weight")[2] == 2

    def test_shortest_distance_helper(self):
        assert shortest_distance(line_graph(), 0, 4) == 12


class TestShortestPath:
    def test_path_on_line(self):
        assert shortest_path(line_graph(), 0, 3) == [0, 1, 2, 3]

    def test_path_respects_metric(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=10)
        g.add_edge(1, 2, weight=1, cost=10)
        g.add_edge(0, 2, weight=9, cost=5)
        assert shortest_path(g, 0, 2, metric="weight") == [0, 1, 2]
        assert shortest_path(g, 0, 2, metric="cost") == [0, 2]

    def test_unreachable_raises(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=1)
        with pytest.raises(DisconnectedGraphError):
            shortest_path(g, 0, 2)

    def test_source_equals_target(self):
        assert shortest_path(line_graph(), 2, 2) == [2]


class TestTraversal:
    def test_bfs_hops(self):
        assert bfs_hops(line_graph(), 0) == [0, 1, 2, 3, 4]

    def test_bfs_unreachable(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=1)
        assert bfs_hops(g, 0) == [0, 1, -1]

    def test_connected_components(self):
        g = RoadNetwork(5)
        g.add_edge(0, 1, weight=1, cost=1)
        g.add_edge(2, 3, weight=1, cost=1)
        comps = sorted(sorted(c) for c in connected_components(g))
        assert comps == [[0, 1], [2, 3], [4]]


class TestDiameter:
    def test_exact_on_line(self):
        assert exact_diameter(line_graph(5)) == 12

    def test_estimate_exact_on_line(self):
        # Double sweep is exact on trees.
        assert estimate_diameter(line_graph(5)) == 12

    def test_estimate_never_exceeds_exact(self):
        g = RoadNetwork(6)
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]
        for u, v in edges:
            g.add_edge(u, v, weight=2, cost=2)
        assert estimate_diameter(g) <= exact_diameter(g)

    def test_disconnected_rejected(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=1)
        with pytest.raises(DisconnectedGraphError):
            estimate_diameter(g)
        with pytest.raises(DisconnectedGraphError):
            exact_diameter(g)

    def test_eccentricity(self):
        assert eccentricity(line_graph(5), 2) == 6

    def test_farthest_vertex(self):
        far, dist = farthest_vertex(line_graph(5), 0)
        assert (far, dist) == (4, 12)


class TestSampling:
    def test_pair_is_distinct(self):
        rng = random.Random(0)
        g = line_graph(4)
        for _ in range(50):
            s, t = sample_connected_pair(g, rng)
            assert s != t
            assert 0 <= s < 4 and 0 <= t < 4

    def test_single_vertex_rejected(self):
        with pytest.raises(InvalidGraphError):
            sample_connected_pair(RoadNetwork(1), random.Random(0))
