"""Unit tests for the synthetic network generators."""

import pytest

from repro.exceptions import InvalidGraphError
from repro.graph import (
    dense_core_network,
    grid_network,
    random_connected_network,
    random_geometric_network,
    ring_network,
)


class TestGrid:
    def test_vertex_count(self):
        assert grid_network(4, 5, seed=0).num_vertices == 20

    def test_connected(self):
        assert grid_network(6, 6, seed=1).is_connected()

    def test_deterministic(self):
        a = grid_network(5, 5, seed=42)
        b = grid_network(5, 5, seed=42)
        assert list(a.edges()) == list(b.edges())

    def test_seed_changes_metrics(self):
        a = grid_network(5, 5, seed=1)
        b = grid_network(5, 5, seed=2)
        assert list(a.edges()) != list(b.edges())

    def test_has_grid_edges(self):
        g = grid_network(3, 3, seed=0, diagonal_prob=0)
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 3)
        assert not g.has_edge(0, 4)  # no diagonals when prob=0

    def test_diagonals_appear_with_prob_one(self):
        g = grid_network(3, 3, seed=0, diagonal_prob=1.0)
        # every cell has one of the two diagonals
        assert g.has_edge(0, 4) or g.has_edge(1, 3)

    def test_positive_metrics(self):
        g = grid_network(5, 5, seed=3)
        assert all(w > 0 and c > 0 for _u, _v, w, c in g.edges())

    def test_too_small_rejected(self):
        with pytest.raises(InvalidGraphError):
            grid_network(1, 5)


class TestRing:
    def test_connected(self):
        assert ring_network(num_towns=5, seed=2).is_connected()

    def test_vertex_count(self):
        g = ring_network(num_towns=4, town_rows=2, town_cols=3, seed=0)
        assert g.num_vertices == 24

    def test_deterministic(self):
        a = ring_network(num_towns=5, seed=9)
        b = ring_network(num_towns=5, seed=9)
        assert list(a.edges()) == list(b.edges())

    def test_minimum_towns_enforced(self):
        with pytest.raises(InvalidGraphError):
            ring_network(num_towns=2)


class TestDenseCore:
    def test_connected(self):
        assert dense_core_network(seed=4).is_connected()

    def test_vertex_count(self):
        g = dense_core_network(
            core_rows=5, core_cols=5, num_corridors=2,
            corridor_length=3, seed=0,
        )
        assert g.num_vertices == 25 + 6

    def test_core_denser_than_plain_grid(self):
        core = dense_core_network(
            core_rows=8, core_cols=8, num_corridors=0,
            corridor_length=0, seed=1,
        )
        plain = grid_network(8, 8, seed=1, diagonal_prob=0.0)
        assert core.num_edges > plain.num_edges


class TestRandomConnected:
    def test_connected_for_various_sizes(self):
        for n in (1, 2, 5, 30):
            assert random_connected_network(n, 3, seed=n).is_connected()

    def test_tree_when_no_extra_edges(self):
        g = random_connected_network(10, 0, seed=5)
        assert g.num_edges == 9

    def test_extra_edges_added(self):
        g = random_connected_network(10, 5, seed=5)
        assert g.num_edges == 14

    def test_zero_vertices_rejected(self):
        with pytest.raises(InvalidGraphError):
            random_connected_network(0, 0)

    def test_deterministic(self):
        a = random_connected_network(15, 8, seed=3)
        b = random_connected_network(15, 8, seed=3)
        assert list(a.edges()) == list(b.edges())


class TestRandomGeometric:
    def test_connected_by_construction(self):
        for seed in range(3):
            g = random_geometric_network(25, radius=0.1, seed=seed)
            assert g.is_connected()

    def test_larger_radius_adds_edges(self):
        sparse = random_geometric_network(30, radius=0.05, seed=2)
        dense = random_geometric_network(30, radius=0.5, seed=2)
        assert dense.num_edges > sparse.num_edges

    def test_minimum_size_enforced(self):
        with pytest.raises(InvalidGraphError):
            random_geometric_network(1)
