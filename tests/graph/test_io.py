"""Unit tests for network file formats."""

import pytest

from repro.exceptions import InvalidGraphError
from repro.graph import (
    RoadNetwork,
    grid_network,
    read_csp_text,
    read_dimacs_pair,
    write_csp_text,
    write_dimacs_pair,
)


@pytest.fixture
def network():
    g = RoadNetwork(4)
    g.add_edge(0, 1, weight=3, cost=7)
    g.add_edge(1, 2, weight=2, cost=2)
    g.add_edge(2, 3, weight=5, cost=1)
    g.add_edge(0, 3, weight=4, cost=9)
    return g


class TestDimacs:
    def test_roundtrip(self, network, tmp_path):
        wpath = str(tmp_path / "net.time.gr")
        cpath = str(tmp_path / "net.dist.gr")
        write_dimacs_pair(network, wpath, cpath)
        loaded = read_dimacs_pair(wpath, cpath)
        assert sorted(loaded.edges()) == sorted(network.edges())

    def test_roundtrip_larger(self, tmp_path):
        g = grid_network(5, 5, seed=1)
        wpath = str(tmp_path / "g.w.gr")
        cpath = str(tmp_path / "g.c.gr")
        write_dimacs_pair(g, wpath, cpath)
        loaded = read_dimacs_pair(wpath, cpath)
        assert sorted(loaded.edges()) == sorted(g.edges())

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        content_w = "c comment\n\np sp 2 2\na 1 2 5\na 2 1 5\n"
        content_c = "p sp 2 2\na 1 2 9\na 2 1 9\n"
        (tmp_path / "w.gr").write_text(content_w)
        (tmp_path / "c.gr").write_text(content_c)
        g = read_dimacs_pair(str(tmp_path / "w.gr"), str(tmp_path / "c.gr"))
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.edge_metrics(0, 1) == [(5, 9)]

    def test_missing_problem_line_rejected(self, tmp_path):
        (tmp_path / "w.gr").write_text("a 1 2 5\n")
        (tmp_path / "c.gr").write_text("a 1 2 9\n")
        with pytest.raises(InvalidGraphError):
            read_dimacs_pair(str(tmp_path / "w.gr"), str(tmp_path / "c.gr"))

    def test_mismatched_files_rejected(self, network, tmp_path):
        wpath = str(tmp_path / "w.gr")
        cpath = str(tmp_path / "c.gr")
        write_dimacs_pair(network, wpath, cpath)
        other = RoadNetwork(2)
        other.add_edge(0, 1, weight=1, cost=1)
        write_dimacs_pair(other, str(tmp_path / "o.w.gr"), str(tmp_path / "o.c.gr"))
        with pytest.raises(InvalidGraphError):
            read_dimacs_pair(wpath, str(tmp_path / "o.c.gr"))

    def test_unknown_record_rejected(self, tmp_path):
        (tmp_path / "w.gr").write_text("p sp 2 2\nx 1 2 5\n")
        (tmp_path / "c.gr").write_text("p sp 2 2\na 1 2 9\n")
        with pytest.raises(InvalidGraphError):
            read_dimacs_pair(str(tmp_path / "w.gr"), str(tmp_path / "c.gr"))


class TestCspText:
    def test_roundtrip(self, network, tmp_path):
        path = str(tmp_path / "net.csp")
        write_csp_text(network, path)
        loaded = read_csp_text(path)
        assert sorted(loaded.edges()) == sorted(network.edges())

    def test_roundtrip_preserves_int_types(self, network, tmp_path):
        path = str(tmp_path / "net.csp")
        write_csp_text(network, path)
        loaded = read_csp_text(path)
        for _u, _v, w, c in loaded.edges():
            assert isinstance(w, int)
            assert isinstance(c, int)

    def test_float_metrics_roundtrip(self, tmp_path):
        g = RoadNetwork(2)
        g.add_edge(0, 1, weight=2.5, cost=1.25)
        path = str(tmp_path / "f.csp")
        write_csp_text(g, path)
        assert read_csp_text(path).edge_metrics(0, 1) == [(2.5, 1.25)]

    def test_header_mismatch_rejected(self, tmp_path):
        (tmp_path / "bad.csp").write_text("csp 2 5\ne 0 1 1 1\n")
        with pytest.raises(InvalidGraphError):
            read_csp_text(str(tmp_path / "bad.csp"))

    def test_edge_before_header_rejected(self, tmp_path):
        (tmp_path / "bad.csp").write_text("e 0 1 1 1\ncsp 2 1\n")
        with pytest.raises(InvalidGraphError):
            read_csp_text(str(tmp_path / "bad.csp"))

    def test_missing_header_rejected(self, tmp_path):
        (tmp_path / "bad.csp").write_text("# nothing here\n")
        with pytest.raises(InvalidGraphError):
            read_csp_text(str(tmp_path / "bad.csp"))

    def test_comments_ignored(self, tmp_path):
        (tmp_path / "ok.csp").write_text(
            "# header comment\ncsp 2 1\n# edge comment\ne 0 1 4 6\n"
        )
        g = read_csp_text(str(tmp_path / "ok.csp"))
        assert g.edge_metrics(0, 1) == [(4, 6)]

    def test_creates_parent_directory(self, network, tmp_path):
        path = str(tmp_path / "sub" / "dir" / "net.csp")
        write_csp_text(network, path)
        assert read_csp_text(path).num_edges == network.num_edges
