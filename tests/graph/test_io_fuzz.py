"""Fuzz/property tests for the validating ingestion layer.

Contract under test (``repro.resilience.ingest``): *every* malformed
input — truncated files, junk lines, mismatched counts, bad metrics,
inconsistent DIMACS pairs — raises a typed
:class:`~repro.exceptions.GraphFormatError` with path/line/column
context.  Never a bare ``ValueError``/``IndexError``/``KeyError``, and
never a silently wrong network.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import (
    DisconnectedGraphError,
    GraphFormatError,
    InvalidGraphError,
)
from repro.graph import random_connected_network, write_csp_text
from repro.graph.io import read_csp_text, read_dimacs_pair
from repro.resilience.ingest import (
    LENIENT,
    STRICT,
    ParsePolicy,
    load_csp_network,
    load_dimacs_network,
)


def csp_file(tmp_path, text: str, name: str = "net.csp") -> str:
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def gr_pair(tmp_path, weight_text: str, cost_text: str) -> tuple[str, str]:
    w = tmp_path / "net.w.gr"
    c = tmp_path / "net.c.gr"
    w.write_text(weight_text)
    c.write_text(cost_text)
    return str(w), str(c)


GOOD_CSP = "csp 3 2\ne 0 1 2 3\ne 1 2 4 5\n"


# ----------------------------------------------------------------------
# CSP text: every malformation is a located, typed error
# ----------------------------------------------------------------------
class TestCSPFormatErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("", "missing 'csp' header"),
            ("e 0 1 2 3\n", "before 'csp' header"),
            ("csp 3\ne 0 1 2 3\n", "header needs"),
            ("csp three 2\n", "must be an integer"),
            ("csp 0 0\n", "must be positive"),
            ("csp 3 -1\n", "must be non-negative"),
            ("csp 3 2\ncsp 3 2\n", "repeated 'csp' header"),
            # Truncated: header promises 2 edges, file ends after 1.
            ("csp 3 2\ne 0 1 2 3\n", "declares 2 edges, file has 1"),
            # Truncated mid-record: an edge line missing its metrics.
            ("csp 3 2\ne 0 1 2 3\ne 1 2\n", "edge needs"),
            ("csp 3 2\ne 0 1 2 3\ne 1 two 4 5\n", "must be an integer"),
            ("csp 3 2\ne 0 1 2 3\ne 1 2 4 x\n", "must be a number"),
            ("csp 3 1\ne 0 9 2 3\n", "out of range"),
            ("csp 3 1\ne 1 1 2 3\n", "self loop"),
            ("csp 3 1\ne 0 1 0 3\n", "finite positive metrics"),
            ("csp 3 1\ne 0 1 -2 3\n", "finite positive metrics"),
            ("csp 3 1\ne 0 1 2 -3\n", "finite positive metrics"),
            ("csp 3 1\ne 0 1 nan 3\n", "finite positive metrics"),
            ("csp 3 1\ne 0 1 inf 3\n", "finite positive metrics"),
            ("csp 3 2\ne 0 1 2 3\njunk line here\n", "unknown record"),
        ],
    )
    def test_malformed_input_raises_located_error(
        self, tmp_path, text, fragment
    ):
        path = csp_file(tmp_path, text)
        with pytest.raises(GraphFormatError) as excinfo:
            load_csp_network(path)
        assert fragment in str(excinfo.value)
        assert excinfo.value.path == path

    def test_error_carries_line_and_column(self, tmp_path):
        path = csp_file(tmp_path, "csp 3 2\ne 0 1 2 3\ne 1 2 4 x\n")
        with pytest.raises(GraphFormatError) as excinfo:
            load_csp_network(path)
        assert excinfo.value.line == 3
        assert excinfo.value.column == 9
        assert f"{path}, line 3, col 9" in str(excinfo.value)

    def test_missing_file_is_format_error(self, tmp_path):
        with pytest.raises(GraphFormatError, match="cannot read file"):
            load_csp_network(str(tmp_path / "nope.csp"))

    def test_format_error_is_invalid_graph_error(self, tmp_path):
        # Callers catching the historical type keep working.
        path = csp_file(tmp_path, "csp 3 1\ne 0 1 0 3\n")
        with pytest.raises(InvalidGraphError):
            read_csp_text(path)


class TestCSPPolicies:
    def test_lenient_skips_junk_and_drops_bad_edges(self, tmp_path):
        path = csp_file(
            tmp_path,
            "csp 4 6\n"
            "garbage that is not a record\n"
            "e 0 1 2 3\n"
            "e 1 1 2 3\n"      # self loop
            "e 1 2 0 3\n"      # zero weight
            "e 2 3 -1 3\n"     # negative weight
            "e 0 1 2 3\n"      # exact duplicate
            "e 2 3 4 5\n",
        )
        network, report = load_csp_network(path, policy=LENIENT)
        assert report.skipped_lines == 1
        assert report.self_loops_dropped == 1
        assert report.bad_metric_edges_dropped == 2
        assert report.duplicate_edges_dropped == 1
        assert report.edges_kept == 2
        # Dropping the bad 1-2 edge disconnected {0,1} from {2,3}; the
        # lenient policy's LCC fallback then kept one component.
        assert report.lcc_applied
        assert network.num_vertices == 2
        assert network.num_edges == 1

    def test_duplicate_reject_policy(self, tmp_path):
        path = csp_file(tmp_path, "csp 3 2\ne 0 1 2 3\ne 1 0 2 3\n")
        policy = ParsePolicy(duplicate_edges="reject")
        with pytest.raises(GraphFormatError, match="duplicate edge"):
            load_csp_network(path, policy=policy)

    def test_parallel_edges_with_distinct_metrics_always_kept(
        self, tmp_path
    ):
        # Distinct trade-offs matter for skylines; only exact repeats
        # count as duplicates.
        path = csp_file(tmp_path, "csp 3 2\ne 0 1 2 3\ne 0 1 3 2\n")
        network, report = load_csp_network(
            path, policy=ParsePolicy(duplicate_edges="dedupe")
        )
        assert network.num_edges == 2
        assert report.duplicate_edges_dropped == 0

    def test_lcc_fallback_keeps_largest_component(self, tmp_path):
        path = csp_file(
            tmp_path,
            "csp 6 4\n"
            "e 0 1 1 1\ne 1 2 1 1\ne 2 3 1 1\n"  # component {0,1,2,3}
            "e 4 5 1 1\n",                       # component {4,5}
        )
        policy = dataclasses.replace(STRICT, lcc_fallback=True)
        network, report = load_csp_network(path, policy=policy)
        assert network.num_vertices == 4
        assert network.num_edges == 3
        assert report.components == 2
        assert report.lcc_applied
        assert report.vertices_dropped == 2
        assert report.edges_dropped_disconnected == 1
        assert report.vertex_map == [0, 1, 2, 3]

    def test_require_connected_raises_without_fallback(self, tmp_path):
        path = csp_file(tmp_path, "csp 4 2\ne 0 1 1 1\ne 2 3 1 1\n")
        policy = dataclasses.replace(STRICT, require_connected=True)
        with pytest.raises(DisconnectedGraphError, match="2 connected"):
            load_csp_network(path, policy=policy)

    def test_bad_policy_values_rejected(self):
        with pytest.raises(ValueError):
            ParsePolicy(duplicate_edges="maybe")
        with pytest.raises(ValueError):
            ParsePolicy(self_loops="sometimes")


# ----------------------------------------------------------------------
# DIMACS pairs: mismatches are explicit, reordering is tolerated
# ----------------------------------------------------------------------
GOOD_W = "c weight\np sp 3 4\na 1 2 5\na 2 1 5\na 2 3 7\na 3 2 7\n"
GOOD_C = "c cost\np sp 3 4\na 1 2 2\na 2 1 2\na 2 3 3\na 3 2 3\n"


class TestDimacsErrors:
    def test_good_pair_loads(self, tmp_path):
        w, c = gr_pair(tmp_path, GOOD_W, GOOD_C)
        network, report = load_dimacs_network(w, c)
        assert network.num_vertices == 3
        assert network.num_edges == 2
        assert sorted(network.edges()) == [(0, 1, 5, 2), (1, 2, 7, 3)]
        assert report.format == "dimacs"

    def test_vertex_count_mismatch(self, tmp_path):
        w, c = gr_pair(tmp_path, GOOD_W, GOOD_C.replace("p sp 3", "p sp 4"))
        with pytest.raises(GraphFormatError, match="declares 4"):
            load_dimacs_network(w, c)

    def test_arc_count_mismatch_names_missing_arcs(self, tmp_path):
        # Cost file lacks the (2, 3)/(3, 2) arcs entirely.
        short_c = "p sp 3 2\na 1 2 2\na 2 1 2\n"
        w, c = gr_pair(tmp_path, GOOD_W, short_c)
        with pytest.raises(GraphFormatError, match="edge-set mismatch"):
            load_dimacs_network(w, c)

    def test_different_arcs_same_count_lists_examples(self, tmp_path):
        # Same arc count, but the cost file replaced (2,3)/(3,2) with
        # (1,3)/(3,1): a genuine edge-set mismatch, reported with the
        # offending arcs from both files.
        other_c = "p sp 3 4\na 1 2 2\na 2 1 2\na 1 3 3\na 3 1 3\n"
        w, c = gr_pair(tmp_path, GOOD_W, other_c)
        with pytest.raises(GraphFormatError) as excinfo:
            load_dimacs_network(w, c)
        message = str(excinfo.value)
        assert "only in the weight file" in message
        assert "(2, 3)" in message
        assert "only in the cost file" in message
        assert "(1, 3)" in message

    def test_reordered_pair_still_loads(self, tmp_path):
        # Same arc multiset, different order: matched by occurrence.
        reordered_c = "p sp 3 4\na 2 3 3\na 3 2 3\na 1 2 2\na 2 1 2\n"
        w, c = gr_pair(tmp_path, GOOD_W, reordered_c)
        network, _report = load_dimacs_network(w, c)
        assert sorted(network.edges()) == [(0, 1, 5, 2), (1, 2, 7, 3)]

    def test_declared_arc_count_enforced_in_strict(self, tmp_path):
        truncated_w = "p sp 3 4\na 1 2 5\na 2 1 5\n"
        truncated_c = "p sp 3 4\na 1 2 2\na 2 1 2\n"
        w, c = gr_pair(tmp_path, truncated_w, truncated_c)
        with pytest.raises(GraphFormatError, match="declares 4 arcs"):
            load_dimacs_network(w, c)

    @pytest.mark.parametrize(
        "bad_w,fragment",
        [
            ("a 1 2 5\n", "before 'p sp'"),
            ("p sp 3\na 1 2 5\n", "problem line needs"),
            ("p sp 3 4\na 1 2\n", "arc needs"),
            ("p sp 3 4\na 1 two 5\n", "must be an integer"),
            ("p sp 3 4\na 1 2 x\n", "must be a number"),
            ("q sp 3 4\n", "unknown record"),
        ],
    )
    def test_malformed_gr_file(self, tmp_path, bad_w, fragment):
        w, c = gr_pair(tmp_path, bad_w, GOOD_C)
        with pytest.raises(GraphFormatError, match=fragment):
            load_dimacs_network(w, c)

    def test_reader_wrapper_raises_typed_error(self, tmp_path):
        w, c = gr_pair(tmp_path, GOOD_W, GOOD_C.replace("a 2 3 3\n", ""))
        with pytest.raises(GraphFormatError):
            read_dimacs_pair(w, c)


# ----------------------------------------------------------------------
# Properties: arbitrary junk never escapes the typed-error contract,
# and well-formed files round-trip exactly
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None, derandomize=True)
@given(text=st.text(max_size=300))
def test_arbitrary_text_raises_only_typed_errors(tmp_path_factory, text):
    path = tmp_path_factory.mktemp("fuzz") / "any.csp"
    path.write_text(text)
    try:
        network, _report = load_csp_network(str(path))
    except InvalidGraphError:
        pass  # GraphFormatError or a structural rejection: both typed
    else:
        assert network.num_vertices > 0


@settings(max_examples=40, deadline=None, derandomize=True)
@given(
    prefix=st.sampled_from(
        [GOOD_CSP, GOOD_CSP.replace("csp 3 2", "csp 3 9")]
    ),
    cut=st.integers(min_value=0, max_value=len(GOOD_CSP)),
)
def test_truncated_files_raise_typed_errors(tmp_path_factory, prefix, cut):
    """Any prefix of a valid file either parses or fails with a typed
    error — truncation can never produce an unhandled exception."""
    path = tmp_path_factory.mktemp("trunc") / "cut.csp"
    path.write_text(prefix[:cut])
    try:
        load_csp_network(str(path))
    except GraphFormatError:
        pass


@settings(max_examples=25, deadline=None, derandomize=True)
@given(
    num_vertices=st.integers(min_value=2, max_value=16),
    extra_edges=st.integers(min_value=0, max_value=12),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_csp_round_trip_is_exact(
    tmp_path_factory, num_vertices, extra_edges, seed
):
    network = random_connected_network(num_vertices, extra_edges, seed=seed)
    path = tmp_path_factory.mktemp("rt") / "round.csp"
    write_csp_text(network, str(path))
    loaded, report = load_csp_network(str(path))
    assert loaded.num_vertices == network.num_vertices
    assert sorted(loaded.edges()) == sorted(network.edges())
    assert report.edges_kept == network.num_edges
    assert report.components == 1
