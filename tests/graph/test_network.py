"""Unit tests for the RoadNetwork graph type."""

import pytest

from repro.exceptions import InvalidGraphError
from repro.graph import RoadNetwork


def build_triangle():
    g = RoadNetwork(3)
    g.add_edge(0, 1, weight=2, cost=5)
    g.add_edge(1, 2, weight=4, cost=1)
    g.add_edge(0, 2, weight=7, cost=7)
    return g


class TestConstruction:
    def test_vertex_count(self):
        assert RoadNetwork(5).num_vertices == 5

    def test_zero_vertices_rejected(self):
        with pytest.raises(InvalidGraphError):
            RoadNetwork(0)

    def test_negative_vertices_rejected(self):
        with pytest.raises(InvalidGraphError):
            RoadNetwork(-2)

    def test_add_edge_records_both_directions(self):
        g = RoadNetwork(2)
        g.add_edge(0, 1, weight=3, cost=4)
        assert list(g.neighbors(0)) == [(1, 3, 4)]
        assert list(g.neighbors(1)) == [(0, 3, 4)]

    def test_self_loop_rejected(self):
        g = RoadNetwork(2)
        with pytest.raises(InvalidGraphError):
            g.add_edge(1, 1, weight=1, cost=1)

    def test_zero_weight_rejected(self):
        g = RoadNetwork(2)
        with pytest.raises(InvalidGraphError):
            g.add_edge(0, 1, weight=0, cost=1)

    def test_zero_cost_rejected(self):
        g = RoadNetwork(2)
        with pytest.raises(InvalidGraphError):
            g.add_edge(0, 1, weight=1, cost=0)

    def test_negative_metric_rejected(self):
        g = RoadNetwork(2)
        with pytest.raises(InvalidGraphError):
            g.add_edge(0, 1, weight=-1, cost=1)

    def test_out_of_range_endpoint_rejected(self):
        g = RoadNetwork(2)
        with pytest.raises(InvalidGraphError):
            g.add_edge(0, 2, weight=1, cost=1)
        with pytest.raises(InvalidGraphError):
            g.add_edge(-1, 0, weight=1, cost=1)

    def test_parallel_edges_allowed(self):
        g = RoadNetwork(2)
        g.add_edge(0, 1, weight=3, cost=4)
        g.add_edge(0, 1, weight=5, cost=2)
        assert g.num_edges == 2
        assert sorted(g.edge_metrics(0, 1)) == [(3, 4), (5, 2)]

    def test_from_edges_roundtrip(self):
        g = build_triangle()
        h = RoadNetwork.from_edges(3, g.edges())
        assert sorted(h.edges()) == sorted(g.edges())


class TestInspection:
    def test_num_edges(self):
        assert build_triangle().num_edges == 3

    def test_degree(self):
        g = build_triangle()
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_has_edge(self):
        g = build_triangle()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_has_edge_absent(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=1)
        assert not g.has_edge(0, 2)

    def test_edge_metrics_of_missing_edge_empty(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=1)
        assert g.edge_metrics(1, 2) == []

    def test_connected_true(self):
        assert build_triangle().is_connected()

    def test_connected_false(self):
        g = RoadNetwork(4)
        g.add_edge(0, 1, weight=1, cost=1)
        g.add_edge(2, 3, weight=1, cost=1)
        assert not g.is_connected()

    def test_single_vertex_is_connected(self):
        assert RoadNetwork(1).is_connected()


class TestDerivation:
    def test_copy_is_independent(self):
        g = build_triangle()
        h = g.copy()
        h.add_edge(0, 1, weight=9, cost=9)
        assert g.num_edges == 3
        assert h.num_edges == 4

    def test_with_metrics_replaces_weights(self):
        g = build_triangle()
        h = g.with_metrics(weights=[10, 20, 30])
        assert [w for _u, _v, w, _c in h.edges()] == [10, 20, 30]
        # costs untouched
        assert [c for _u, _v, _w, c in h.edges()] == [5, 1, 7]

    def test_with_metrics_replaces_costs(self):
        g = build_triangle()
        h = g.with_metrics(costs=[1, 2, 3])
        assert [c for _u, _v, _w, c in h.edges()] == [1, 2, 3]

    def test_with_metrics_wrong_length_rejected(self):
        g = build_triangle()
        with pytest.raises(InvalidGraphError):
            g.with_metrics(weights=[1])
        with pytest.raises(InvalidGraphError):
            g.with_metrics(costs=[1, 2])

    def test_path_metrics_sums_over_edges(self):
        g = build_triangle()
        assert g.path_metrics([0, 1, 2]) == (6, 6)

    def test_path_metrics_single_vertex(self):
        assert build_triangle().path_metrics([1]) == (0, 0)

    def test_path_metrics_rejects_non_edges(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=1)
        with pytest.raises(InvalidGraphError):
            g.path_metrics([0, 2])

    def test_path_metrics_rejects_empty(self):
        with pytest.raises(InvalidGraphError):
            build_triangle().path_metrics([])

    def test_path_metrics_picks_best_parallel_edge(self):
        g = RoadNetwork(2)
        g.add_edge(0, 1, weight=5, cost=5)
        g.add_edge(0, 1, weight=2, cost=9)
        assert g.path_metrics([0, 1]) == (2, 9)
