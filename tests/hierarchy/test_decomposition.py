"""Unit tests for tree decomposition construction (Algorithm 1)."""

import pytest

from repro.datasets import paper_figure1_network, v
from repro.exceptions import DisconnectedGraphError
from repro.graph import RoadNetwork, random_connected_network
from repro.hierarchy import build_tree_decomposition
from repro.skyline import path_of_pairs


class TestBasics:
    def test_disconnected_rejected(self):
        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1, cost=1)
        with pytest.raises(DisconnectedGraphError):
            build_tree_decomposition(g)

    def test_single_edge_graph(self):
        g = RoadNetwork(2)
        g.add_edge(0, 1, weight=2, cost=3)
        td = build_tree_decomposition(g)
        assert td.root == 1
        assert td.bag[0] == (1,)
        assert td.bag[1] == ()
        assert path_of_pairs(td.shortcuts[0][1]) == [(2, 3)]

    def test_every_vertex_eliminated_once(self):
        g = random_connected_network(25, 15, seed=2)
        td = build_tree_decomposition(g)
        assert sorted(td.order) == list(range(25))

    def test_build_seconds_recorded(self, random30_tree):
        assert random30_tree.build_seconds > 0

    def test_parallel_edges_collapse_into_skyline(self):
        g = RoadNetwork(2)
        g.add_edge(0, 1, weight=5, cost=1)
        g.add_edge(0, 1, weight=1, cost=5)
        g.add_edge(0, 1, weight=9, cost=9)  # dominated
        td = build_tree_decomposition(g)
        assert path_of_pairs(td.shortcuts[0][1]) == [(5, 1), (1, 5)]


class TestPaperExample6:
    """Algorithm 1 on Figure 1 must reproduce Figure 3 exactly."""

    EXPECTED_BAGS = {
        1: {8, 13}, 2: {8, 9}, 3: {8, 9}, 4: {5, 12}, 5: {10, 12},
        6: {11, 12}, 7: {10, 11}, 8: {9, 13}, 9: {10, 13},
        10: {11, 12, 13}, 11: {12, 13}, 12: {13}, 13: set(),
    }
    EXPECTED_PARENTS = {
        1: 8, 2: 8, 3: 8, 4: 5, 5: 10, 6: 11, 7: 10, 8: 9,
        9: 10, 10: 11, 11: 12, 12: 13,
    }

    @pytest.fixture(scope="class")
    def tree(self):
        return build_tree_decomposition(paper_figure1_network())

    def test_bags_match_figure3(self, tree):
        for pv, expected in self.EXPECTED_BAGS.items():
            assert set(tree.bag[v(pv)]) == {v(x) for x in expected}

    def test_parents_match_figure3(self, tree):
        for pv, parent in self.EXPECTED_PARENTS.items():
            assert tree.parent[v(pv)] == v(parent)

    def test_root_is_v13(self, tree):
        assert tree.root == v(13)

    def test_treewidth_is_four(self, tree):
        # max |X(v)| = |X(v10)| = 4.
        assert tree.treewidth == 4

    def test_first_eliminated_is_v1(self, tree):
        # Example 6: "suppose that we first process v1".
        assert tree.order[0] == v(1)

    def test_shortcut_v10_v13_is_fill_path(self, tree):
        # v10-v13 is not an original edge: the shortcut holds the fill
        # path through v9 with pair (1,1)+(v9-v13 fill (2,5)+(8,9)...)
        # — its exact value is the skyline over eliminated-interior
        # paths, which here includes the v9 route.
        pairs = path_of_pairs(tree.shortcuts[v(10)][v(13)])
        assert all(w > 0 and c > 0 for w, c in pairs)


class TestStrategies:
    def test_min_fill_also_valid(self, random30):
        td = build_tree_decomposition(random30, strategy="min_fill")
        assert sorted(td.order) == list(range(30))

    def test_min_fill_width_not_worse_on_example(self):
        g = paper_figure1_network()
        deg = build_tree_decomposition(g, strategy="min_degree")
        fill = build_tree_decomposition(g, strategy="min_fill")
        assert fill.treewidth <= deg.treewidth + 1

    def test_unknown_strategy_rejected(self, random30):
        from repro.exceptions import IndexBuildError

        with pytest.raises(IndexBuildError):
            build_tree_decomposition(random30, strategy="widest_first")


class TestShortcutSoundness:
    def test_shortcut_entries_are_real_paths(self):
        """Every shortcut pair must be achievable in the original graph
        (its expansion is a concrete path with exactly those metrics)."""
        from repro.skyline import expand

        g = random_connected_network(20, 14, seed=9)
        td = build_tree_decomposition(g)
        for vtx in range(20):
            for w_nbr, entries in td.shortcuts[vtx].items():
                for entry in entries:
                    path = expand(entry, vtx, w_nbr)
                    assert g.path_metrics(path) == (entry[0], entry[1])

    def test_store_paths_false_drops_provenance(self):
        g = random_connected_network(10, 5, seed=1)
        td = build_tree_decomposition(g, store_paths=False)
        for vtx in range(10):
            for entries in td.shortcuts[vtx].values():
                assert all(e[2] is None for e in entries)

    def test_max_skyline_caps_set_sizes(self):
        g = random_connected_network(25, 30, seed=4)
        td = build_tree_decomposition(g, max_skyline=2)
        for vtx in range(25):
            for entries in td.shortcuts[vtx].values():
                assert len(entries) <= 2
