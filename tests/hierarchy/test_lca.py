"""Unit tests for the Euler-tour LCA index."""

import random

import pytest

from repro.datasets import paper_figure1_network, v
from repro.graph import random_connected_network
from repro.hierarchy import LCAIndex, build_tree_decomposition


@pytest.fixture(scope="module")
def paper_lca():
    tree = build_tree_decomposition(paper_figure1_network())
    return tree, LCAIndex(tree)


def naive_lca(tree, a, b):
    anc_a = [a] + tree.ancestors(a)
    anc_b = set([b] + tree.ancestors(b))
    for x in anc_a:
        if x in anc_b:
            return x
    raise AssertionError("trees always share the root")


class TestPaperExample:
    def test_example8_lca_of_v8_v4_is_v10(self, paper_lca):
        _tree, lca = paper_lca
        assert lca.query(v(8), v(4)) == v(10)

    def test_ancestor_descendant_pair(self, paper_lca):
        _tree, lca = paper_lca
        assert lca.query(v(8), v(13)) == v(13)
        assert lca.query(v(13), v(8)) == v(13)

    def test_same_vertex(self, paper_lca):
        _tree, lca = paper_lca
        assert lca.query(v(7), v(7)) == v(7)

    def test_relation_flags(self, paper_lca):
        _tree, lca = paper_lca
        lca_v, s_anc, t_anc = lca.relation(v(13), v(8))
        assert (lca_v, s_anc, t_anc) == (v(13), True, False)
        lca_v, s_anc, t_anc = lca.relation(v(8), v(4))
        assert (lca_v, s_anc, t_anc) == (v(10), False, False)


class TestAgainstNaive:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_trees(self, seed):
        g = random_connected_network(40, 20, seed=seed)
        tree = build_tree_decomposition(g)
        lca = LCAIndex(tree)
        rng = random.Random(seed)
        for _ in range(100):
            a, b = rng.randrange(40), rng.randrange(40)
            assert lca.query(a, b) == naive_lca(tree, a, b)

    def test_symmetric(self, paper_lca):
        _tree, lca = paper_lca
        for a in range(13):
            for b in range(13):
                assert lca.query(a, b) == lca.query(b, a)

    def test_deep_chain_tree(self):
        # A path graph decomposes into a deep chain; exercises the
        # iterative Euler tour.
        from repro.graph import RoadNetwork

        n = 400
        g = RoadNetwork(n)
        for i in range(n - 1):
            g.add_edge(i, i + 1, weight=1, cost=1)
        tree = build_tree_decomposition(g)
        lca = LCAIndex(tree)
        for a, b in [(0, n - 1), (5, 300), (100, 100)]:
            assert lca.query(a, b) == naive_lca(tree, a, b)
