"""Unit tests for the TreeDecomposition structure."""

import pytest

from repro.datasets import paper_figure1_network, v
from repro.exceptions import IndexBuildError
from repro.hierarchy import TreeDecomposition, build_tree_decomposition


@pytest.fixture(scope="module")
def paper_tree():
    return build_tree_decomposition(paper_figure1_network())


class TestStructure:
    def test_position_inverts_order(self, paper_tree):
        for pos, vtx in enumerate(paper_tree.order):
            assert paper_tree.position[vtx] == pos

    def test_children_consistent_with_parent(self, paper_tree):
        for vtx in range(paper_tree.num_vertices):
            for child in paper_tree.children[vtx]:
                assert paper_tree.parent[child] == vtx

    def test_depth_of_root_is_zero(self, paper_tree):
        assert paper_tree.depth[paper_tree.root] == 0

    def test_depth_increments_from_parent(self, paper_tree):
        for vtx in range(paper_tree.num_vertices):
            if vtx != paper_tree.root:
                parent = paper_tree.parent[vtx]
                assert paper_tree.depth[vtx] == paper_tree.depth[parent] + 1

    def test_topdown_order_visits_parent_first(self, paper_tree):
        seen = set()
        for vtx in paper_tree.topdown_order:
            if vtx != paper_tree.root:
                assert paper_tree.parent[vtx] in seen
            seen.add(vtx)

    def test_bag_with_self(self, paper_tree):
        assert paper_tree.bag_with_self(v(10)) == (
            v(10),
        ) + paper_tree.bag[v(10)]

    def test_bag_sorted_by_position(self, paper_tree):
        for vtx in range(paper_tree.num_vertices):
            positions = [paper_tree.position[u] for u in paper_tree.bag[vtx]]
            assert positions == sorted(positions)


class TestAncestry:
    def test_ancestors_of_v8(self, paper_tree):
        # Chain from Figure 3: X(v8) -> X(v9) -> X(v10) -> ... -> X(v13).
        assert paper_tree.ancestors(v(8)) == [
            v(9), v(10), v(11), v(12), v(13)
        ]

    def test_ancestors_of_root_empty(self, paper_tree):
        assert paper_tree.ancestors(paper_tree.root) == []

    def test_is_ancestor(self, paper_tree):
        assert paper_tree.is_ancestor(v(10), v(8))
        assert not paper_tree.is_ancestor(v(8), v(10))
        assert not paper_tree.is_ancestor(v(8), v(8))

    def test_child_towards(self, paper_tree):
        # Example 11: the child of X(v10) on v8's branch is X(v9);
        # on v4's branch it is X(v5).
        assert paper_tree.child_towards(v(10), v(8)) == v(9)
        assert paper_tree.child_towards(v(10), v(4)) == v(5)

    def test_child_towards_direct_child(self, paper_tree):
        assert paper_tree.child_towards(v(10), v(9)) == v(9)

    def test_child_towards_non_descendant_raises(self, paper_tree):
        with pytest.raises(IndexBuildError):
            paper_tree.child_towards(v(8), v(13))


class TestStatistics:
    def test_treewidth(self, paper_tree):
        assert paper_tree.treewidth == 4

    def test_treeheight_counts_root_as_one(self, paper_tree):
        # Deepest chain: v13,v12,v11,v10,v9,v8,v1|v2|v3 -> height 7.
        assert paper_tree.treeheight == 7

    def test_average_height_bounds(self, paper_tree):
        assert 1 <= paper_tree.average_height <= paper_tree.treeheight


class TestValidationOnConstruction:
    def test_incomplete_order_rejected(self):
        with pytest.raises(IndexBuildError):
            TreeDecomposition(3, [0, 1], {0: (), 1: (), 2: ()}, {})

    def test_multiple_roots_rejected(self):
        # Two bag-less vertices => forest, not a tree.
        with pytest.raises(IndexBuildError):
            TreeDecomposition(
                2, [0, 1], {0: (), 1: ()}, {0: {}, 1: {}}
            )
