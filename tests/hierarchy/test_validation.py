"""Definition 7 / separator property tests over generated networks.

These are the paper's load-bearing structural facts: Definition 7's three
conditions, Properties 1-2, and Lemma 1's separator guarantees.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import paper_figure1_network, v
from repro.graph import grid_network, random_connected_network
from repro.hierarchy import (
    LCAIndex,
    build_tree_decomposition,
    is_separator,
    validate_definition7,
    validate_property1,
    validate_property2,
)


class TestDefinition7:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_networks(self, seed):
        g = random_connected_network(25, 18, seed=seed)
        td = build_tree_decomposition(g)
        assert validate_definition7(g, td) == []

    def test_grid(self):
        g = grid_network(5, 5, seed=0)
        td = build_tree_decomposition(g)
        assert validate_definition7(g, td) == []

    def test_paper_example(self):
        g = paper_figure1_network()
        td = build_tree_decomposition(g)
        assert validate_definition7(g, td) == []

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=20),
        extra=st.integers(min_value=0, max_value=15),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_fuzz(self, n, extra, seed):
        g = random_connected_network(n, extra, seed=seed)
        td = build_tree_decomposition(g)
        assert validate_definition7(g, td) == []
        assert validate_property1(td) == []
        assert validate_property2(td) == []


class TestProperties:
    @pytest.mark.parametrize("strategy", ["min_degree", "min_fill"])
    def test_both_strategies(self, strategy):
        g = random_connected_network(30, 20, seed=3)
        td = build_tree_decomposition(g, strategy=strategy)
        assert validate_property1(td) == []
        assert validate_property2(td) == []


class TestSeparators:
    def test_paper_example7(self):
        # {v10, v13} separates v8 from v4.
        g = paper_figure1_network()
        assert is_separator(g, v(8), v(4), {v(10), v(13)})

    def test_paper_example8_lca_bag_separates(self):
        g = paper_figure1_network()
        assert is_separator(g, v(8), v(4), {v(10), v(11), v(12), v(13)})

    def test_not_a_separator(self):
        g = paper_figure1_network()
        assert not is_separator(g, v(8), v(4), {v(1)})

    def test_endpoint_in_separator_is_trivially_true(self):
        g = paper_figure1_network()
        assert is_separator(g, v(8), v(4), {v(8)})

    @pytest.mark.parametrize("seed", range(4))
    def test_lemma1_lca_bag_is_separator(self, seed):
        """Lemma 1: for non-ancestor pairs, X(l) separates s from t."""
        g = random_connected_network(30, 20, seed=seed)
        td = build_tree_decomposition(g)
        lca = LCAIndex(td)
        rng = random.Random(seed)
        checked = 0
        while checked < 20:
            s, t = rng.randrange(30), rng.randrange(30)
            if s == t:
                continue
            l, s_anc, t_anc = lca.relation(s, t)
            if s_anc or t_anc:
                continue
            assert is_separator(g, s, t, set(td.bag_with_self(l)))
            checked += 1

    @pytest.mark.parametrize("seed", range(4))
    def test_lemma1_path_bags_are_separators(self, seed):
        """Lemma 1's second half: X(v)\\{v} separates for every node on
        the tree path except the LCA — this is what makes H(s)/H(t)
        valid."""
        g = random_connected_network(30, 20, seed=seed)
        td = build_tree_decomposition(g)
        lca = LCAIndex(td)
        rng = random.Random(100 + seed)
        checked = 0
        while checked < 10:
            s, t = rng.randrange(30), rng.randrange(30)
            if s == t:
                continue
            l, s_anc, t_anc = lca.relation(s, t)
            if s_anc or t_anc:
                continue
            c_s = td.child_towards(l, s)
            c_t = td.child_towards(l, t)
            assert is_separator(g, s, t, set(td.bag[c_s]))
            assert is_separator(g, s, t, set(td.bag[c_t]))
            checked += 1
