"""Integration: every engine answers every query identically.

The strongest correctness statement the repo makes: QHL (all ablation
variants), CSP-2Hop, COLA and the index-free searches return the same
``(weight, cost)`` pair on every query, across network families.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import COLAEngine, constrained_dijkstra
from repro.core import QHLIndex
from repro.graph import (
    grid_network,
    random_connected_network,
    random_geometric_network,
    ring_network,
)


def assert_engines_agree(network, index, cola, rng, rounds=40):
    engines = [
        index.qhl_engine(),
        index.qhl_engine(use_pruning_conditions=False),
        index.qhl_engine(use_two_pointer=False),
        index.csp2hop_engine(),
        cola,
    ]
    n = network.num_vertices
    for _ in range(rounds):
        s, t = rng.randrange(n), rng.randrange(n)
        budget = rng.randint(1, 400)
        truth = constrained_dijkstra(
            network, s, t, budget, want_path=False
        ).pair()
        for engine in engines:
            assert engine.query(s, t, budget).pair() == truth, (
                engine.name, s, t, budget
            )


class TestNetworkFamilies:
    def test_grid(self):
        g = grid_network(7, 7, seed=31)
        index = QHLIndex.build(g, num_index_queries=300, seed=31)
        cola = COLAEngine(g, num_parts=4, seed=31)
        assert_engines_agree(g, index, cola, random.Random(31))

    def test_ring(self):
        g = ring_network(num_towns=6, town_rows=3, town_cols=3, seed=32)
        index = QHLIndex.build(g, num_index_queries=300, seed=32)
        cola = COLAEngine(g, num_parts=6, seed=32)
        assert_engines_agree(g, index, cola, random.Random(32))

    def test_geometric(self):
        g = random_geometric_network(45, radius=0.25, seed=33)
        index = QHLIndex.build(g, num_index_queries=300, seed=33)
        cola = COLAEngine(g, num_parts=4, seed=33)
        assert_engines_agree(g, index, cola, random.Random(33))

    def test_random_sparse(self):
        g = random_connected_network(45, 10, seed=34)
        index = QHLIndex.build(g, num_index_queries=300, seed=34)
        cola = COLAEngine(g, num_parts=4, seed=34)
        assert_engines_agree(g, index, cola, random.Random(34))

    def test_random_dense(self):
        g = random_connected_network(30, 80, seed=35)
        index = QHLIndex.build(g, num_index_queries=300, seed=35)
        cola = COLAEngine(g, num_parts=3, seed=35)
        assert_engines_agree(g, index, cola, random.Random(35))


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(min_value=2, max_value=18),
    extra=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
    data=st.data(),
)
def test_fuzz_qhl_against_ground_truth(n, extra, seed, data):
    """Hypothesis-driven: random network, random queries, exact match."""
    g = random_connected_network(n, extra, seed=seed)
    index = QHLIndex.build(g, num_index_queries=60, seed=seed)
    for _ in range(8):
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        t = data.draw(st.integers(min_value=0, max_value=n - 1))
        budget = data.draw(st.integers(min_value=0, max_value=300))
        truth = constrained_dijkstra(g, s, t, budget, want_path=False)
        assert index.query(s, t, budget).pair() == truth.pair()


class TestMultiConstraintConsistency:
    def test_multi_with_one_constraint_matches_csp(self):
        from repro.baselines import multi_constrained_dijkstra

        g = random_connected_network(25, 20, seed=40)
        rng = random.Random(40)
        for _ in range(25):
            s, t = rng.randrange(25), rng.randrange(25)
            budget = rng.randint(1, 250)
            single = constrained_dijkstra(g, s, t, budget, want_path=False)
            multi = multi_constrained_dijkstra(g, s, t, budgets=(budget,))
            if single.feasible:
                assert multi is not None
                assert multi[0] == single.weight
                assert multi[1] == (single.cost,)
            else:
                assert multi is None
