"""Hypothesis fuzzing for the extension subsystems.

Each extension gets the same treatment the core received: random
networks, random queries, exact agreement with an independent
ground-truth search.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import constrained_dijkstra
from repro.directed import (
    DirectedQHLIndex,
    directed_constrained_dijkstra,
    directed_from_undirected,
)
from repro.dynamic import DynamicQHLIndex
from repro.forest import ForestQHLIndex
from repro.graph import RoadNetwork, random_connected_network
from repro.multicsp import (
    MultiCSPIndex,
    MultiMetricNetwork,
    multi_dijkstra_reference,
)

SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**SETTINGS)
@given(
    n=st.integers(min_value=2, max_value=15),
    extra=st.integers(min_value=0, max_value=12),
    seed=st.integers(min_value=0, max_value=5000),
    data=st.data(),
)
def test_fuzz_directed(n, extra, seed, data):
    base = random_connected_network(n, extra, seed=seed)
    g = directed_from_undirected(base, seed=seed)
    index = DirectedQHLIndex.build(g, num_index_queries=40, seed=seed)
    for _ in range(6):
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        t = data.draw(st.integers(min_value=0, max_value=n - 1))
        budget = data.draw(st.integers(min_value=0, max_value=250))
        truth = directed_constrained_dijkstra(g, s, t, budget)
        assert index.query(s, t, budget).pair() == truth.pair()


@settings(**SETTINGS)
@given(
    n=st.integers(min_value=2, max_value=14),
    extra=st.integers(min_value=0, max_value=10),
    seed=st.integers(min_value=0, max_value=5000),
    data=st.data(),
)
def test_fuzz_multicsp(n, extra, seed, data):
    base = random_connected_network(n, extra, seed=seed)
    tolls = [
        data.draw(st.integers(min_value=1, max_value=12))
        for _ in range(base.num_edges)
    ]
    multi = MultiMetricNetwork.from_network(base, extra_costs=[tolls])
    index = MultiCSPIndex.build(multi)
    for _ in range(5):
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        t = data.draw(st.integers(min_value=0, max_value=n - 1))
        budgets = (
            data.draw(st.integers(min_value=0, max_value=200)),
            data.draw(st.integers(min_value=0, max_value=100)),
        )
        assert index.query(s, t, budgets) == multi_dijkstra_reference(
            multi, s, t, budgets
        )


@settings(**SETTINGS)
@given(
    n=st.integers(min_value=2, max_value=16),
    extra=st.integers(min_value=0, max_value=12),
    parts=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=5000),
    data=st.data(),
)
def test_fuzz_forest(n, extra, parts, seed, data):
    g = random_connected_network(n, extra, seed=seed)
    forest = ForestQHLIndex(g, num_parts=parts, seed=seed)
    for _ in range(5):
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        t = data.draw(st.integers(min_value=0, max_value=n - 1))
        budget = data.draw(st.integers(min_value=0, max_value=250))
        truth = constrained_dijkstra(g, s, t, budget, want_path=False)
        assert forest.query(s, t, budget).pair() == truth.pair()


@settings(**SETTINGS)
@given(
    n=st.integers(min_value=3, max_value=14),
    extra=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=5000),
    data=st.data(),
)
def test_fuzz_dynamic_update_sequences(n, extra, seed, data):
    g = random_connected_network(n, extra, seed=seed)
    dyn = DynamicQHLIndex.build(g, num_index_queries=30, seed=0)
    for _ in range(3):
        edge = data.draw(
            st.integers(min_value=0, max_value=g.num_edges - 1)
        )
        dyn.update_edge(
            edge,
            weight=data.draw(st.integers(min_value=1, max_value=25)),
            cost=data.draw(st.integers(min_value=1, max_value=25)),
        )
    current = RoadNetwork.from_edges(n, dyn.network_edges())
    for _ in range(5):
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        t = data.draw(st.integers(min_value=0, max_value=n - 1))
        budget = data.draw(st.integers(min_value=0, max_value=250))
        truth = constrained_dijkstra(current, s, t, budget, want_path=False)
        assert dyn.query(s, t, budget).pair() == truth.pair()
