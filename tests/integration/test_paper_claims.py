"""Integration: the paper's qualitative claims hold on our stand-ins.

These are the trends the benchmarks print (Figures 6-8); the tests pin
the *direction* of each effect on a small grid so a regression that
silently destroys the paper's result fails CI.
"""

import random

import pytest

from repro.core import QHLIndex
from repro.graph import estimate_diameter, grid_network, shortest_distance
from repro.instrument import run_workload
from repro.types import CSPQuery
from repro.workloads import generate_distance_sets


@pytest.fixture(scope="module")
def setup():
    g = grid_network(10, 10, seed=55)
    d_max = estimate_diameter(g)
    sets = generate_distance_sets(g, size=60, d_max=d_max, seed=55)
    index_queries = [q for s in sets.values() for q in s.queries][::3]
    index = QHLIndex.build(g, index_queries=index_queries, seed=55)
    return g, index, sets


def total_stats(engine, queries):
    hop = con = 0
    for q in queries:
        r = engine.query(q.source, q.target, q.budget)
        hop += r.stats.hoplinks
        con += r.stats.concatenations
    return hop, con


class TestFigure7Claims:
    def test_qhl_uses_fewer_hoplinks_than_csp2hop(self, setup):
        _g, index, sets = setup
        qhl = index.qhl_engine()
        c2h = index.csp2hop_engine()
        for name in ("Q3", "Q4", "Q5"):
            qhl_hop, _ = total_stats(qhl, sets[name].queries)
            c2h_hop, _ = total_stats(c2h, sets[name].queries)
            assert qhl_hop < c2h_hop, name

    def test_qhl_performs_fewer_concatenations(self, setup):
        _g, index, sets = setup
        qhl = index.qhl_engine()
        c2h = index.csp2hop_engine()
        for name in ("Q3", "Q4", "Q5"):
            _, qhl_con = total_stats(qhl, sets[name].queries)
            _, c2h_con = total_stats(c2h, sets[name].queries)
            assert qhl_con < c2h_con, name

    def test_concatenations_grow_with_distance_band(self, setup):
        _g, index, sets = setup
        c2h = index.csp2hop_engine()
        _, con_q1 = total_stats(c2h, sets["Q1"].queries)
        _, con_q5 = total_stats(c2h, sets["Q5"].queries)
        assert con_q5 > con_q1


class TestFigure8Claims:
    def test_removing_pruning_conditions_costs_concatenations(self, setup):
        _g, index, sets = setup
        full = index.qhl_engine()
        no_prune = index.qhl_engine(use_pruning_conditions=False)
        _, con_full = total_stats(full, sets["Q2"].queries)
        _, con_no_prune = total_stats(no_prune, sets["Q2"].queries)
        assert con_full <= con_no_prune

    def test_removing_two_pointer_costs_more(self, setup):
        _g, index, sets = setup
        full = index.qhl_engine()
        cartesian = index.qhl_engine(use_two_pointer=False)
        _, con_full = total_stats(full, sets["Q4"].queries)
        _, con_cart = total_stats(cartesian, sets["Q4"].queries)
        assert con_full < con_cart


class TestHarness:
    def test_run_workload_aggregates(self, setup):
        _g, index, sets = setup
        report = run_workload(
            index.qhl_engine(), sets["Q1"].queries, workload_name="Q1"
        )
        assert report.num_queries == len(sets["Q1"])
        assert report.feasible == report.num_queries  # C >= d always
        assert report.avg_ms > 0
        assert report.workload == "Q1"
        assert "Q1" in report.row()
        assert report.header()

    def test_run_workload_counts_infeasible(self, setup):
        _g, index, _sets = setup
        queries = [CSPQuery(0, 99, 1)]  # unreachable within budget 1
        report = run_workload(index.qhl_engine(), queries)
        assert report.feasible == 0

    def test_avg_us_scales_ms(self, setup):
        _g, index, sets = setup
        report = run_workload(index.qhl_engine(), sets["Q1"].queries[:5])
        assert report.avg_us == pytest.approx(report.avg_ms * 1000)


class TestWorkloadFeasibility:
    def test_paper_budgets_always_feasible(self, setup):
        """C = 0.5 C_max + 0.5 d >= d, so every Q query has an answer."""
        g, index, sets = setup
        rng = random.Random(0)
        for name, qset in sets.items():
            for q in rng.sample(qset.queries, 10):
                assert index.query(q.source, q.target, q.budget).feasible

    def test_budget_below_distance_is_infeasible(self, setup):
        g, index, sets = setup
        q = sets["Q5"].queries[0]
        d = shortest_distance(g, q.source, q.target)
        result = index.query(q.source, q.target, d * 0.99)
        assert not result.feasible
