"""The paper's running example, end to end, in narrative order.

Every numbered Example in the paper (1-17) that makes a checkable claim
is asserted here against the reconstructed Figure 1 network — one file
a reader can step through next to the paper.
"""

import pytest

from repro.baselines import CSP2HopEngine, skyline_between
from repro.core import QHLIndex, compute_cub
from repro.datasets import paper_figure1_network, v
from repro.hierarchy import (
    LCAIndex,
    build_tree_decomposition,
    is_separator,
)
from repro.labeling import build_labels
from repro.skyline import dominates, path_of_pairs
from repro.types import CSPQuery


@pytest.fixture(scope="module")
def world():
    network = paper_figure1_network()
    tree = build_tree_decomposition(network)
    labels = build_labels(tree)
    lca = LCAIndex(tree)
    index = QHLIndex.build(
        network, index_queries=[CSPQuery(v(8), v(4), 13)], seed=0
    )
    return network, tree, labels, lca, index


def test_example1_edge_metrics(world):
    """w((v8, v3)) = 2 and c((v8, v3)) = 4."""
    network, *_ = world
    assert network.edge_metrics(v(8), v(3)) == [(2, 4)]


def test_example2_csp_answer(world):
    """Query (v8, v4, C=13) → (17, 13) via (v8,v2,v9,v10,v5,v4)."""
    _n, _t, _l, _lca, index = world
    result = index.query(v(8), v(4), 13, want_path=True)
    assert result.pair() == (17, 13)
    assert result.path == [v(8), v(2), v(9), v(10), v(5), v(4)]


def test_example3_path_domination(world):
    """(v8,v3,v9) = (8,7) dominates (v8,v1,v13,v11,v10,v9) = (14,18)."""
    network, *_ = world
    a = network.path_metrics([v(8), v(3), v(9)])
    b = network.path_metrics([v(8), v(1), v(13), v(11), v(10), v(9)])
    assert a == (8, 7)
    assert b == (14, 18)
    assert dominates(a, b)


def test_example4_skyline_set(world):
    """P_v8v9 = {(8,7) via v3, (7,8) via v2}."""
    network, *_ = world
    assert path_of_pairs(skyline_between(network, v(8), v(9))) == [
        (8, 7), (7, 8)
    ]


def test_example5_skyline_answers_all_budgets(world):
    """P_v8v4 = {(18,12), (17,13), (16,18)}; the answer is the largest
    cost within C."""
    network, _t, _l, _lca, index = world
    assert path_of_pairs(skyline_between(network, v(8), v(4))) == [
        (18, 12), (17, 13), (16, 18)
    ]
    assert index.query(v(8), v(4), 13).pair() == (17, 13)


def test_example6_tree_decomposition(world):
    """v1 eliminated first; X(v1) = {v1, v8, v13}; parent X(v8)."""
    _n, tree, *_ = world
    assert tree.order[0] == v(1)
    assert set(tree.bag_with_self(v(1))) == {v(1), v(8), v(13)}
    assert tree.parent[v(1)] == v(8)


def test_example7_separator(world):
    """{v10, v13} separates v8 from v4."""
    network, *_ = world
    assert is_separator(network, v(8), v(4), {v(10), v(13)})


def test_example8_lca_bag_is_separator(world):
    """X(v10) = {v10,v11,v12,v13} is the LCA bag and a separator."""
    network, tree, _l, lca, _i = world
    assert lca.query(v(8), v(4)) == v(10)
    bag = set(tree.bag_with_self(v(10)))
    assert bag == {v(10), v(11), v(12), v(13)}
    assert is_separator(network, v(8), v(4), bag)


def test_example9_property1(world):
    """X(v11), X(v12), X(v13) are ancestors of X(v10)."""
    _n, tree, *_ = world
    ancestors = set(tree.ancestors(v(10)))
    assert {v(11), v(12), v(13)}.issubset(ancestors)


def test_example10_csp2hop_concatenations(world):
    """CSP-2Hop scans all four hoplinks' Cartesian products.

    (The paper says 16; its own stated sets force |P_v8v12| = 3, so the
    faithful count is 17 — see EXPERIMENTS.md.)
    """
    _n, tree, labels, _lca, _i = world
    engine = CSP2HopEngine(tree, labels)
    result = engine.query(v(8), v(4), 13)
    assert result.stats.hoplinks == 4
    assert result.stats.concatenations == 17


def test_example11_initial_separators(world):
    """H(s) = X(v9)\\{v9} = {v10, v13}; H(t) = X(v5)\\{v5} = {v10, v12}."""
    from repro.core import initial_separators

    _n, tree, _l, lca, _i = world
    c_s, h_s, c_t, h_t = initial_separators(
        tree, lca.query(v(8), v(4)), v(8), v(4)
    )
    assert (c_s, set(h_s)) == (v(9), {v(10), v(13)})
    assert (c_t, set(h_t)) == (v(5), {v(10), v(12)})


def test_example12_pruning_condition(world):
    """Condition for H = {v10, v13}, v_end = v8: C_ub[v13] = 14,
    C_ub[v10] = 0; with C = 13 < 14, v13 is pruned."""
    _n, _t, _l, _lca, index = world
    bounds = index.pruning.lookup(v(9), v(8))
    assert bounds == {v(13): 14}
    pruned = index.pruning.prune(v(9), v(8), (v(10), v(13)), budget=13)
    assert pruned == (v(10),)


def test_example13_candidate_separators(world):
    """H = {{v10}, {v10, v12}}: the pruned H(s) plus H(t)."""
    _n, _t, _l, _lca, index = world
    result = index.query(v(8), v(4), 13)
    # Hoplink selection picked the singleton {v10} (T = 4 < T(H(t))).
    assert result.stats.hoplinks == 1


def test_example14_theta_range(world):
    """v13 pruned by v10 under any θ ∈ (13, 14]: the sets line up."""
    _n, _t, labels, *_ = world
    p_sh = path_of_pairs(labels.get(v(8), v(13)))
    p_su = path_of_pairs(labels.get(v(8), v(10)))
    p_uh = path_of_pairs(labels.get(v(10), v(13)))
    assert p_sh == [(12, 11), (11, 12), (10, 14)]
    assert p_su == [(9, 8), (8, 9)]
    assert p_uh == [(3, 3)]
    concatenated = sorted(
        (w1 + w2, c1 + c2) for w1, c1 in p_su for w2, c2 in p_uh
    )
    assert concatenated == [(11, 12), (12, 11)]


def test_example15_two_pointer_walkthrough(world):
    """Three concatenations suffice for hoplink v10, yielding (17, 13)."""
    from repro.core import concat_best_under

    _n, _t, labels, *_ = world
    best, inspected = concat_best_under(
        labels.get(v(8), v(10)), labels.get(v(10), v(4)), budget=13
    )
    assert best[:2] == (17, 13)
    assert inspected == 3


def test_example16_algorithm6(world):
    """Algorithm 6 on (v_end=v8, h=v13, u=v10) returns C_ub = 14."""
    _n, _t, labels, *_ = world
    cub = compute_cub(
        labels.get(v(8), v(13)),
        labels.get(v(8), v(10)),
        labels.get(v(10), v(13)),
        mid=v(10),
    )
    assert cub == 14


def test_example17_algorithm7_ordering(world):
    """Sorting {v10, v13} by cheapest cost gives h(1)=v10, h(2)=v13,
    and the built condition sets C_ub[v13] = 14."""
    import random

    from repro.core import PruningConditionIndex, build_condition

    _n, _t, labels, *_ = world
    ordered = sorted(
        (v(10), v(13)), key=lambda h: labels.get(v(8), h)[0][1]
    )
    assert ordered == [v(10), v(13)]
    bounds = build_condition(
        labels, (v(10), v(13)), v(8), random.Random(0),
        PruningConditionIndex(), {},
    )
    assert bounds == {v(13): 14}


def test_qhl_three_concatenations_claim(world):
    """§2.3: 'our proposed QHL only needs to do 3 concatenations'."""
    _n, _t, _l, _lca, index = world
    result = index.query(v(8), v(4), 13)
    assert result.stats.concatenations == 3
