"""Robustness: unusual-but-legal inputs through the whole pipeline.

Parallel edges, float metrics, huge budgets, deep path graphs, repeated
builds — cases the individual unit tests touch only per-module.
"""

import random

import pytest

from repro.baselines import constrained_dijkstra
from repro.core import QHLIndex
from repro.graph import RoadNetwork


def network_with_parallel_edges(seed=0):
    """A random network where every edge has a metric-flipped twin."""
    rng = random.Random(seed)
    g = RoadNetwork(15)
    for v in range(1, 15):
        u = rng.randrange(v)
        w, c = rng.randint(1, 9), rng.randint(1, 9)
        g.add_edge(u, v, w, c)
        g.add_edge(u, v, c + 1, w + 1)  # incomparable twin
    return g


class TestParallelEdges:
    def test_full_pipeline_agreement(self):
        g = network_with_parallel_edges(seed=1)
        index = QHLIndex.build(g, num_index_queries=200, seed=1)
        rng = random.Random(2)
        for _ in range(40):
            s, t = rng.randrange(15), rng.randrange(15)
            budget = rng.randint(1, 120)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            assert index.query(s, t, budget).pair() == want.pair()

    def test_paths_remain_expandable(self):
        g = network_with_parallel_edges(seed=3)
        index = QHLIndex.build(g, num_index_queries=100, seed=3)
        result = index.query(0, 14, 500, want_path=True)
        if result.feasible:
            assert result.path[0] == 0 and result.path[-1] == 14
            # path_metrics picks the best parallel edge per hop, which
            # can only be as good as the reported pair.
            w, c = g.path_metrics(result.path)
            assert w <= result.weight and c <= result.cost or (
                (w, c) == result.pair()
            )


class TestFloatMetrics:
    def test_float_weights_and_costs(self):
        rng = random.Random(7)
        g = RoadNetwork(12)
        for v in range(1, 12):
            u = rng.randrange(v)
            g.add_edge(u, v, rng.uniform(0.1, 5.0), rng.uniform(0.1, 5.0))
        for _ in range(6):
            a, b = rng.randrange(12), rng.randrange(12)
            if a != b and not g.has_edge(a, b):
                g.add_edge(a, b, rng.uniform(0.1, 5.0), rng.uniform(0.1, 5.0))
        index = QHLIndex.build(g, num_index_queries=150, seed=7)
        for _ in range(30):
            s, t = rng.randrange(12), rng.randrange(12)
            budget = rng.uniform(0.5, 40.0)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            got = index.query(s, t, budget)
            if want.feasible:
                assert got.weight == pytest.approx(want.weight)
                assert got.cost == pytest.approx(want.cost)
            else:
                assert not got.feasible


class TestExtremes:
    def test_two_vertex_network(self):
        g = RoadNetwork(2)
        g.add_edge(0, 1, weight=3, cost=4)
        index = QHLIndex.build(g, num_index_queries=10, seed=0)
        assert index.query(0, 1, 4).pair() == (3, 4)
        assert not index.query(0, 1, 3).feasible

    def test_deep_path_graph(self):
        n = 200
        g = RoadNetwork(n)
        for i in range(n - 1):
            g.add_edge(i, i + 1, weight=2, cost=3)
        index = QHLIndex.build(g, num_index_queries=50, seed=0)
        result = index.query(0, n - 1, 3 * (n - 1), want_path=True)
        assert result.pair() == (2 * (n - 1), 3 * (n - 1))
        assert result.path == list(range(n))

    def test_huge_budget(self, small_grid, small_grid_index):
        result = small_grid_index.query(0, 63, budget=float("inf"))
        want = constrained_dijkstra(
            small_grid, 0, 63, float("inf"), want_path=False
        )
        assert result.pair() == want.pair()

    def test_zero_budget_same_vertex_only(self, small_grid_index):
        assert small_grid_index.query(5, 5, 0).pair() == (0, 0)
        assert not small_grid_index.query(5, 6, 0).feasible

    def test_repeated_queries_deterministic(self, small_grid_index):
        results = {
            small_grid_index.query(3, 60, 250).pair() for _ in range(10)
        }
        assert len(results) == 1

    def test_query_does_not_mutate_index(self, small_grid_index):
        before = small_grid_index.labels.num_entries()
        for budget in (10, 100, 1000):
            small_grid_index.query(0, 63, budget)
        assert small_grid_index.labels.num_entries() == before


class TestCompleteGraph:
    def test_clique_pipeline(self):
        rng = random.Random(11)
        n = 10
        g = RoadNetwork(n)
        for i in range(n):
            for j in range(i + 1, n):
                g.add_edge(i, j, rng.randint(1, 20), rng.randint(1, 20))
        index = QHLIndex.build(g, num_index_queries=100, seed=11)
        for _ in range(30):
            s, t = rng.randrange(n), rng.randrange(n)
            budget = rng.randint(1, 60)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            assert index.query(s, t, budget).pair() == want.pair()
