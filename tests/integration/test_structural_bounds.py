"""Structural bounds the paper's analysis relies on (§5.2.1).

"|Hoplinks| are bounded by the treewidth … determined by the tree
decomposition algorithm which only uses V and E but not w and c."
"""

import random

import pytest

from repro.core import QHLIndex
from repro.graph import grid_network, random_connected_network
from repro.hierarchy import build_tree_decomposition


class TestHoplinkBounds:
    @pytest.mark.parametrize("seed", range(3))
    def test_hoplinks_bounded_by_treewidth(self, seed):
        g = random_connected_network(35, 30, seed=seed)
        index = QHLIndex.build(g, num_index_queries=150, seed=seed)
        omega = index.tree.treewidth
        rng = random.Random(seed)
        for _ in range(50):
            s, t = rng.randrange(35), rng.randrange(35)
            result = index.query(s, t, rng.randint(1, 300))
            assert result.stats.hoplinks <= omega

    def test_csp2hop_hoplinks_also_bounded(self):
        g = grid_network(7, 7, seed=4)
        index = QHLIndex.build(g, num_index_queries=150, seed=4)
        engine = index.csp2hop_engine()
        omega = index.tree.treewidth
        rng = random.Random(4)
        for _ in range(40):
            s, t = rng.randrange(49), rng.randrange(49)
            result = engine.query(s, t, rng.randint(10, 400))
            assert result.stats.hoplinks <= omega

    def test_qhl_separators_never_exceed_lca_bag(self):
        """H(s), H(t) ⊆ X(l): the §3.2 guarantee behind 'fewer
        hoplinks'."""
        from repro.core import initial_separators
        from repro.hierarchy import LCAIndex

        g = random_connected_network(30, 25, seed=6)
        tree = build_tree_decomposition(g)
        lca = LCAIndex(tree)
        rng = random.Random(6)
        checked = 0
        while checked < 25:
            s, t = rng.randrange(30), rng.randrange(30)
            if s == t:
                continue
            l, s_anc, t_anc = lca.relation(s, t)
            if s_anc or t_anc:
                continue
            _c_s, h_s, _c_t, h_t = initial_separators(tree, l, s, t)
            bag = set(tree.bag_with_self(l))
            assert set(h_s).issubset(bag)
            assert set(h_t).issubset(bag)
            checked += 1


class TestMetricIndependence:
    def test_tree_structure_ignores_metrics(self):
        """Same topology, different metrics ⇒ identical decomposition
        structure (the reason hoplink counts are metric-independent)."""
        import random as rnd

        g1 = grid_network(6, 6, seed=1)
        rng = rnd.Random(99)
        g2 = g1.with_metrics(
            weights=[rng.randint(1, 50) for _ in range(g1.num_edges)],
            costs=[rng.randint(1, 50) for _ in range(g1.num_edges)],
        )
        t1 = build_tree_decomposition(g1)
        t2 = build_tree_decomposition(g2)
        assert t1.order == t2.order
        assert t1.bag == t2.bag
        assert t1.parent == t2.parent


class TestStrategyInvariance:
    def test_min_fill_answers_match_min_degree(self):
        """The elimination heuristic changes costs, never answers."""
        g = random_connected_network(28, 22, seed=9)
        a = QHLIndex.build(
            g, num_index_queries=100, strategy="min_degree", seed=9
        )
        b = QHLIndex.build(
            g, num_index_queries=100, strategy="min_fill", seed=9
        )
        rng = random.Random(9)
        for _ in range(40):
            s, t = rng.randrange(28), rng.randrange(28)
            budget = rng.randint(1, 300)
            assert a.query(s, t, budget).pair() == b.query(
                s, t, budget
            ).pair()
