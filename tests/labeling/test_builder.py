"""Label construction correctness: labels must equal ground-truth skyline
sets for every (vertex, ancestor) pair."""

import random

import pytest

from repro.baselines import skyline_between
from repro.datasets import paper_figure1_network, v
from repro.graph import grid_network, random_connected_network
from repro.hierarchy import build_tree_decomposition
from repro.labeling import build_labels
from repro.skyline import expand, is_canonical, path_of_pairs


class TestPaperExampleLabels:
    @pytest.fixture(scope="class")
    def built(self):
        g = paper_figure1_network()
        tree = build_tree_decomposition(g)
        return g, tree, build_labels(tree)

    def test_label_keys_are_exactly_ancestors(self, built):
        _g, tree, labels = built
        for vtx in range(13):
            assert set(labels.label(vtx)) == set(tree.ancestors(vtx))

    def test_example4_p_v8v9(self, built):
        _g, _tree, labels = built
        assert path_of_pairs(labels.get(v(8), v(9))) == [(8, 7), (7, 8)]

    def test_example14_p_v8v13(self, built):
        _g, _tree, labels = built
        assert path_of_pairs(labels.get(v(8), v(13))) == [
            (12, 11), (11, 12), (10, 14)
        ]

    def test_example14_p_v8v10(self, built):
        _g, _tree, labels = built
        assert path_of_pairs(labels.get(v(8), v(10))) == [(9, 8), (8, 9)]

    def test_example14_p_v10v13(self, built):
        _g, _tree, labels = built
        assert path_of_pairs(labels.get(v(10), v(13))) == [(3, 3)]

    def test_example15_p_v10v4(self, built):
        _g, _tree, labels = built
        assert path_of_pairs(labels.get(v(10), v(4))) == [(9, 4), (8, 9)]

    def test_label_of_v10_matches_paper_text(self, built):
        # §2.3: L(v10) = {(v11, ...), (v12, ...), (v13, ...)}.
        _g, _tree, labels = built
        assert set(labels.label(v(10))) == {v(11), v(12), v(13)}


class TestGroundTruth:
    @pytest.mark.parametrize("seed", range(5))
    def test_labels_equal_true_skylines_random(self, seed):
        g = random_connected_network(25, 20, seed=seed)
        tree = build_tree_decomposition(g)
        labels = build_labels(tree)
        for vtx, u, entries in labels.items():
            want = path_of_pairs(skyline_between(g, vtx, u))
            assert path_of_pairs(entries) == want, (vtx, u)

    def test_labels_equal_true_skylines_grid(self):
        g = grid_network(5, 5, seed=8)
        tree = build_tree_decomposition(g)
        labels = build_labels(tree)
        rng = random.Random(0)
        sampled = rng.sample(list(labels.items()), 40)
        for vtx, u, entries in sampled:
            want = path_of_pairs(skyline_between(g, vtx, u))
            assert path_of_pairs(entries) == want

    def test_all_label_sets_canonical(self, random30_labels):
        for _v, _u, entries in random30_labels.items():
            assert is_canonical(entries)

    def test_label_entries_expand_to_real_paths(self):
        g = random_connected_network(20, 15, seed=6)
        tree = build_tree_decomposition(g)
        labels = build_labels(tree)
        for vtx, u, entries in labels.items():
            for entry in entries:
                path = expand(entry, vtx, u)
                assert path[0] == vtx and path[-1] == u
                assert g.path_metrics(path) == (entry[0], entry[1])

    def test_build_seconds_recorded(self, random30_labels):
        assert random30_labels.build_seconds > 0

    def test_max_skyline_truncation_respected(self):
        g = random_connected_network(25, 25, seed=3)
        tree = build_tree_decomposition(g, max_skyline=3)
        labels = build_labels(tree, max_skyline=3)
        assert labels.max_set_size() <= 3

    def test_store_paths_false_produces_no_provenance(self):
        g = random_connected_network(15, 10, seed=2)
        tree = build_tree_decomposition(g, store_paths=False)
        labels = build_labels(tree, store_paths=False)
        for _v, _u, entries in labels.items():
            assert all(e[2] is None for e in entries)
