"""Checkpointed/resumable label builds (``repro.resilience.checkpoint``).

The load-bearing claim: a build interrupted at *any* point and resumed
produces labels byte-identical (on the canonical compact form) to an
uninterrupted build — for the sequential and the level-parallel path.
"""

from __future__ import annotations

import os

import pytest

from repro.exceptions import BuildBudgetExceededError, IndexBuildError
from repro.graph import grid_network, random_connected_network
from repro.hierarchy.decomposition import build_tree_decomposition
from repro.labeling.builder import build_labels
from repro.labeling.parallel import depth_levels
from repro.observability.metrics import MetricsRegistry, use_registry
from repro.resilience.checkpoint import (
    BuildBudget,
    CheckpointStore,
    build_labels_checkpointed,
    tree_fingerprint,
)
from repro.storage.compact import pack_labels


@pytest.fixture(scope="module")
def tree():
    return build_tree_decomposition(grid_network(6, 6, seed=7))


@pytest.fixture(scope="module")
def fresh_bytes(tree):
    return pack_labels(build_labels(tree))


def level_files(directory: str) -> list[str]:
    return sorted(
        name for name in os.listdir(directory)
        if name.startswith("level-")
    )


class TestCheckpointedBuild:
    def test_fresh_checkpointed_build_matches_plain(
        self, tree, fresh_bytes, tmp_path
    ):
        store = build_labels_checkpointed(tree, str(tmp_path))
        assert pack_labels(store) == fresh_bytes

    def test_writes_one_checkpoint_per_level(self, tree, tmp_path):
        build_labels_checkpointed(tree, str(tmp_path))
        assert len(level_files(str(tmp_path))) == len(depth_levels(tree))
        assert os.path.exists(tmp_path / "manifest.ckpt")

    @pytest.mark.parametrize("workers", [1, 2])
    def test_resume_from_every_level_is_byte_identical(
        self, tree, fresh_bytes, tmp_path, workers
    ):
        num_levels = len(depth_levels(tree))
        for crash_level in range(num_levels):
            directory = str(tmp_path / f"w{workers}-crash{crash_level}")
            checkpoint = CheckpointStore(directory)
            build_labels_checkpointed(tree, checkpoint, workers=workers)
            # Simulate dying right after `crash_level` completed: later
            # checkpoints never made it to disk.
            for name in level_files(directory):
                if int(name[6:12]) > crash_level:
                    os.remove(os.path.join(directory, name))
            resumed = build_labels_checkpointed(
                tree, checkpoint, workers=workers, resume=True
            )
            assert pack_labels(resumed) == fresh_bytes, (
                f"resume after level {crash_level} "
                f"(workers={workers}) diverged"
            )

    def test_resume_on_empty_directory_builds_from_scratch(
        self, tree, fresh_bytes, tmp_path
    ):
        store = build_labels_checkpointed(
            tree, str(tmp_path / "empty"), resume=True
        )
        assert pack_labels(store) == fresh_bytes

    def test_corrupt_level_checkpoint_is_recomputed(
        self, tree, fresh_bytes, tmp_path
    ):
        directory = str(tmp_path)
        build_labels_checkpointed(tree, directory)
        files = level_files(directory)
        victim = os.path.join(directory, files[len(files) // 2])
        with open(victim, "r+b") as f:
            f.seek(40)
            f.write(b"\xff\xff\xff\xff")
        resumed = build_labels_checkpointed(tree, directory, resume=True)
        assert pack_labels(resumed) == fresh_bytes

    def test_resumed_store_keeps_path_provenance(self, tree, tmp_path):
        directory = str(tmp_path)
        build_labels_checkpointed(tree, directory)
        files = level_files(directory)
        os.remove(os.path.join(directory, files[-1]))
        resumed = build_labels_checkpointed(tree, directory, resume=True)
        # Entries restored from checkpoints (not just recomputed ones)
        # still carry provenance, so path retrieval works after resume.
        assert all(
            len(entry) > 2 and entry[2] is not None
            for _v, _u, entries in resumed.items()
            for entry in entries
        )

    def test_fingerprint_mismatch_rejects_stale_checkpoints(
        self, tree, tmp_path
    ):
        directory = str(tmp_path)
        build_labels_checkpointed(tree, directory)
        other_tree = build_tree_decomposition(grid_network(6, 6, seed=8))
        with pytest.raises(IndexBuildError, match="different network"):
            build_labels_checkpointed(other_tree, directory, resume=True)

    def test_fingerprint_covers_build_params(self, tree):
        base = tree_fingerprint(tree, True, None)
        assert tree_fingerprint(tree, False, None) != base
        assert tree_fingerprint(tree, True, 4) != base
        assert tree_fingerprint(tree, True, None) == base

    def test_non_resume_clears_stale_checkpoints(self, tree, tmp_path):
        directory = str(tmp_path)
        checkpoint = CheckpointStore(directory)
        build_labels_checkpointed(tree, checkpoint)
        before = len(level_files(directory))
        # A fresh (resume=False) run against the same directory starts
        # over instead of trusting old files.
        other_tree = build_tree_decomposition(grid_network(5, 5, seed=1))
        build_labels_checkpointed(other_tree, checkpoint)
        assert len(level_files(directory)) == len(depth_levels(other_tree))
        assert len(level_files(directory)) < before

    def test_builder_facade_routes_to_checkpointed_path(
        self, tree, fresh_bytes, tmp_path
    ):
        store = build_labels(tree, checkpoint=str(tmp_path))
        assert pack_labels(store) == fresh_bytes
        assert level_files(str(tmp_path))

    def test_budget_without_checkpoint_rejected(self, tree):
        with pytest.raises(IndexBuildError, match="checkpoint"):
            build_labels(tree, budget=BuildBudget(max_seconds=1))
        with pytest.raises(IndexBuildError, match="checkpoint"):
            build_labels(tree, resume=True)


class TestBuildBudget:
    def test_time_budget_checkpoints_then_raises(self, tree, tmp_path):
        ticks = iter(range(0, 1000, 10))  # each check sees +10s
        budget = BuildBudget(max_seconds=5, clock=lambda: next(ticks))
        with pytest.raises(BuildBudgetExceededError) as excinfo:
            build_labels_checkpointed(
                tree, str(tmp_path), budget=budget
            )
        assert excinfo.value.level == 0
        assert excinfo.value.elapsed_s == 10
        assert "--resume" in str(excinfo.value)

    def test_exhausted_build_resumes_to_identical_bytes(
        self, tree, fresh_bytes, tmp_path
    ):
        # Give the watchdog enough budget for a few levels, crash, then
        # finish with --resume semantics.
        clock = {"now": 0.0}

        def tick():
            clock["now"] += 1.0
            return clock["now"]

        directory = str(tmp_path)
        with pytest.raises(BuildBudgetExceededError) as excinfo:
            build_labels_checkpointed(
                tree, directory,
                budget=BuildBudget(max_seconds=3, clock=tick),
            )
        assert excinfo.value.level > 0  # some levels did complete
        resumed = build_labels_checkpointed(tree, directory, resume=True)
        assert pack_labels(resumed) == fresh_bytes

    def test_memory_budget_raises(self, tree, tmp_path, monkeypatch):
        import repro.resilience.checkpoint as checkpoint_mod

        monkeypatch.setattr(checkpoint_mod, "_rss_mb", lambda: 4096.0)
        with pytest.raises(BuildBudgetExceededError) as excinfo:
            build_labels_checkpointed(
                tree, str(tmp_path),
                budget=BuildBudget(max_rss_mb=1024),
            )
        assert excinfo.value.rss_mb == 4096.0

    def test_no_limits_never_raises(self, tree, tmp_path):
        build_labels_checkpointed(
            tree, str(tmp_path), budget=BuildBudget()
        )


class TestCheckpointMetrics:
    def test_restored_and_built_levels_are_counted(self, tree, tmp_path):
        directory = str(tmp_path)
        build_labels_checkpointed(tree, directory)
        files = level_files(directory)
        for name in files[2:]:
            os.remove(os.path.join(directory, name))
        registry = MetricsRegistry()
        with use_registry(registry):
            build_labels_checkpointed(tree, directory, resume=True)
        restored = registry.counter("build_resume_levels_restored_total")
        built = registry.counter("build_checkpoint_levels_total")
        assert restored.value == 2
        assert built.value == len(files) - 2


class TestRandomNetworks:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_resume_identity_on_random_graphs(self, seed, tmp_path):
        network = random_connected_network(24, 20, seed=seed)
        tree = build_tree_decomposition(network)
        expected = pack_labels(build_labels(tree))
        directory = str(tmp_path / f"s{seed}")
        build_labels_checkpointed(tree, directory)
        files = level_files(directory)
        for name in files[max(1, len(files) // 2):]:
            os.remove(os.path.join(directory, name))
        resumed = build_labels_checkpointed(tree, directory, resume=True)
        assert pack_labels(resumed) == expected
