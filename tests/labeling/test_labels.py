"""Unit tests for the label store."""

import pytest

from repro.exceptions import IndexBuildError
from repro.labeling import LabelStore
from repro.skyline import path_of_pairs


def entries(pairs):
    return [(w, c, None) for w, c in pairs]


class TestLookup:
    def test_set_and_get(self):
        store = LabelStore(3)
        store.set(0, 2, entries([(5, 5)]))
        assert path_of_pairs(store.get(0, 2)) == [(5, 5)]

    def test_symmetric_lookup(self):
        store = LabelStore(3)
        store.set(0, 2, entries([(5, 5)]))
        assert store.get(2, 0) == store.get(0, 2)

    def test_same_vertex_returns_zero_path(self):
        store = LabelStore(3)
        assert path_of_pairs(store.get(1, 1)) == [(0, 0)]

    def test_missing_pair_raises(self):
        store = LabelStore(3)
        with pytest.raises(IndexBuildError):
            store.get(0, 1)

    def test_has(self):
        store = LabelStore(3)
        store.set(0, 2, entries([(5, 5)]))
        assert store.has(0, 2)
        assert store.has(2, 0)
        assert store.has(1, 1)
        assert not store.has(0, 1)

    def test_label_raw_access(self):
        store = LabelStore(3)
        store.set(0, 2, entries([(5, 5)]))
        assert set(store.label(0)) == {2}
        assert store.label(1) == {}


class TestAccounting:
    @pytest.fixture
    def store(self):
        store = LabelStore(4)
        store.set(0, 2, entries([(5, 5), (4, 6)]))
        store.set(0, 3, entries([(1, 1)]))
        store.set(1, 3, entries([(2, 2), (1, 3), (0.5, 4)]))
        return store

    def test_num_entries(self, store):
        assert store.num_entries() == 6

    def test_num_sets(self, store):
        assert store.num_sets() == 3

    def test_size_bytes(self, store):
        assert store.size_bytes() == 6 * 16 + 3 * 8

    def test_max_set_size(self, store):
        assert store.max_set_size() == 3

    def test_average_set_size(self, store):
        assert store.average_set_size() == 2.0

    def test_empty_store(self):
        store = LabelStore(2)
        assert store.num_entries() == 0
        assert store.max_set_size() == 0
        assert store.average_set_size() == 0.0

    def test_items_iterates_all_sets(self, store):
        assert sorted((v, u) for v, u, _e in store.items()) == [
            (0, 2), (0, 3), (1, 3)
        ]
