"""Parallel label build must reproduce the sequential index exactly."""

from __future__ import annotations

import pytest

from repro.graph import grid_network
from repro.hierarchy import build_tree_decomposition
from repro.labeling import build_labels
from repro.labeling.parallel import (
    build_labels_parallel,
    depth_levels,
    fork_available,
)
from repro.storage.compact import pack_labels

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def assert_stores_equal(tree, sequential, parallel):
    """Value-identity of every label set + byte-identity of the packed form."""
    for v in tree.topdown_order:
        for u in tree.ancestors(v):
            lhs = sequential.get(v, u)
            rhs = parallel.get(v, u)
            assert len(lhs) == len(rhs), (v, u)
            for a, b in zip(lhs, rhs):
                assert (a[0], a[1]) == (b[0], b[1]), (v, u)
    packed_lhs = pack_labels(sequential)
    packed_rhs = pack_labels(parallel)
    for name in (
        "set_offsets", "hubs", "entry_offsets", "weights", "costs",
    ):
        assert getattr(packed_lhs, name).tobytes() == getattr(
            packed_rhs, name
        ).tobytes(), name


class TestDepthLevels:
    def test_partition_covers_all_vertices(self, random30_tree):
        levels = depth_levels(random30_tree)
        flat = [v for level in levels for v in level]
        assert sorted(flat) == sorted(random30_tree.topdown_order)

    def test_levels_are_depth_homogeneous_and_ordered(self, random30_tree):
        tree = random30_tree
        levels = depth_levels(tree)
        for d, level in enumerate(levels):
            assert {tree.depth[v] for v in level} == {
                tree.depth[level[0]]
            }
        depths = [tree.depth[level[0]] for level in levels]
        assert depths == sorted(depths)

    def test_level_members_depend_only_on_shallower_levels(
        self, random30_tree
    ):
        """The independence property the parallel build relies on."""
        tree = random30_tree
        for level in depth_levels(tree):
            members = set(level)
            for v in level:
                for w in tree.bag[v]:
                    assert w not in members, (
                        f"bag of {v} reaches into its own level"
                    )


@needs_fork
class TestParallelEqualsSequential:
    def test_paper_example(self, paper_network):
        tree = build_tree_decomposition(paper_network)
        sequential = build_labels(tree)
        parallel = build_labels_parallel(tree, workers=2)
        assert_stores_equal(tree, sequential, parallel)

    def test_synthetic_grid(self):
        network = grid_network(6, 6, seed=9)
        tree = build_tree_decomposition(network)
        sequential = build_labels(tree)
        parallel = build_labels_parallel(tree, workers=3)
        assert_stores_equal(tree, sequential, parallel)

    def test_without_paths_and_truncated(self):
        network = grid_network(5, 5, seed=2)
        tree = build_tree_decomposition(network)
        sequential = build_labels(tree, store_paths=False, max_skyline=4)
        parallel = build_labels_parallel(
            tree, store_paths=False, max_skyline=4, workers=2
        )
        assert_stores_equal(tree, sequential, parallel)

    def test_builder_workers_argument_routes_here(self, paper_network):
        tree = build_tree_decomposition(paper_network)
        sequential = build_labels(tree)
        threaded = build_labels(tree, workers=2)
        assert_stores_equal(tree, sequential, threaded)

    def test_parallel_index_answers_queries(self, paper_network):
        """End-to-end: a worker-built index answers like the default one."""
        from repro.core import QHLIndex

        baseline = QHLIndex.build(
            paper_network, num_index_queries=50, seed=7
        )
        parallel = QHLIndex.build(
            paper_network, num_index_queries=50, seed=7, label_workers=2
        )
        for s, t, c in ((7, 3, 13), (0, 5, 20), (2, 9, 25), (1, 12, 9)):
            lhs = baseline.query(s, t, c)
            rhs = parallel.query(s, t, c)
            assert (lhs.feasible, lhs.weight, lhs.cost) == (
                rhs.feasible, rhs.weight, rhs.cost,
            )


class TestFallbacks:
    def test_single_worker_falls_back_to_sequential(self, paper_network):
        tree = build_tree_decomposition(paper_network)
        sequential = build_labels(tree)
        fallback = build_labels_parallel(tree, workers=1)
        assert_stores_equal(tree, sequential, fallback)

    def test_no_fork_falls_back_to_sequential(
        self, paper_network, monkeypatch
    ):
        import repro.labeling.parallel as parallel_mod

        monkeypatch.setattr(
            parallel_mod, "fork_available", lambda: False
        )
        tree = build_tree_decomposition(paper_network)
        sequential = build_labels(tree)
        fallback = parallel_mod.build_labels_parallel(tree, workers=4)
        assert_stores_equal(tree, sequential, fallback)


@needs_fork
class TestBuildTracing:
    """Worker-side observability on the pool path (PR-6 stitching)."""

    def _traced_build(self):
        import os

        from repro.observability.metrics import (
            MetricsRegistry,
            use_registry,
        )
        from repro.observability.tracing import SpanTracer, use_tracer

        # 10x10: deep enough that several levels clear
        # MIN_PARALLEL_LEVEL and actually fan out.
        network = grid_network(10, 10, seed=4)
        tree = build_tree_decomposition(network)
        tracer = SpanTracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            store = build_labels_parallel(tree, workers=2)
        return tree, store, tracer, registry, os.getpid()

    def test_worker_metrics_reach_parent_registry(self):
        _tree, _store, _tracer, registry, _pid = self._traced_build()
        vertex_seconds = registry.histogram("qhl_label_vertex_seconds")
        assert vertex_seconds.count > 0
        assert registry.counter("qhl_label_joins_total").value > 0
        assert registry.counter("qhl_trace_stitched_total").value >= 1

    def test_fanout_spans_carry_worker_pids(self):
        _tree, _store, tracer, _registry, parent_pid = self._traced_build()
        sweep = tracer.last()
        assert sweep.name == "labels.parallel-sweep"
        fanouts = [
            c for c in sweep.children if c.name == "labels.level-fanout"
        ]
        assert fanouts, "no level ever fanned out on the 10x10 grid"
        worker_pids = {
            int(chunk.counters["pid"])
            for fanout in fanouts
            for chunk in fanout.children
            if chunk.name == "labels.worker-chunk"
        }
        assert worker_pids
        assert parent_pid not in worker_pids

    def test_observed_build_is_value_identical(self):
        tree, store, _tracer, _registry, _pid = self._traced_build()
        sequential = build_labels(tree)
        assert_stores_equal(tree, sequential, store)
