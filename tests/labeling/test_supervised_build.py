"""Supervised parallel label builds must stay byte-identical.

PR-3's guarantee — a parallel build equals a sequential one on the
canonical compact form — must survive supervision, including when a
worker is genuinely SIGKILLed mid-level and its vertex chunk is
recomputed by a respawned worker.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.graph import grid_network
from repro.hierarchy import build_tree_decomposition
from repro.labeling import build_labels
from repro.labeling.parallel import build_labels_parallel, fork_available
from repro.service import FaultInjector, use_injector
from repro.supervise import SupervisionConfig

from tests.labeling.test_parallel_build import assert_stores_equal

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

FAST = SupervisionConfig(
    heartbeat_ms=20.0, stall_after_ms=2000.0,
    backoff_base_s=0.005, backoff_max_s=0.05,
    max_task_retries=10, drain_grace_s=1.0,
)


def die():
    """Fault factory: SIGKILL this worker instead of raising."""
    os.kill(os.getpid(), signal.SIGKILL)
    return RuntimeError("unreachable")  # pragma: no cover


@pytest.fixture(scope="module")
def tree():
    return build_tree_decomposition(grid_network(8, 8, seed=3))


@pytest.fixture(scope="module")
def sequential(tree):
    return build_labels(tree)


class TestSupervisedBuildIdentity:
    def test_clean_supervised_build_is_byte_identical(
        self, tree, sequential
    ):
        supervised = build_labels_parallel(
            tree, workers=2, supervised=True, supervision=FAST
        )
        assert_stores_equal(tree, sequential, supervised)

    def test_build_survives_a_mid_level_sigkill(self, tree, sequential):
        # The third task of one worker incarnation per level SIGKILLs
        # it; the supervisor respawns (re-forking the current store
        # snapshot) and recomputes the lost chunk.  The labels must
        # still match the sequential build byte for byte.
        injector = FaultInjector()
        injector.fail("worker-task", exc=die, after=2, times=1)
        with use_injector(injector):
            supervised = build_labels_parallel(
                tree, workers=2, supervised=True, supervision=FAST
            )
        assert_stores_equal(tree, sequential, supervised)

    def test_engine_results_match_after_a_kill(self, tree, sequential):
        # End to end through the facade: a supervised build under fault
        # injection answers queries identically to a sequential one.
        from repro.core.qhl import QHLEngine
        from repro.hierarchy.lca import LCAIndex
        from repro.core.pruning import PruningConditionIndex

        injector = FaultInjector()
        injector.fail("worker-task", exc=die, after=2, times=1)
        with use_injector(injector):
            supervised = build_labels_parallel(
                tree, workers=2, supervised=True, supervision=FAST
            )
        lca = LCAIndex(tree)
        pruning = PruningConditionIndex()
        lhs = QHLEngine(tree, sequential, lca, pruning)
        rhs = QHLEngine(tree, supervised, lca, pruning)
        for s, t, c in ((0, 63, 30.0), (7, 56, 45.0), (12, 50, 60.0)):
            assert lhs.query(s, t, c).pair() == rhs.query(s, t, c).pair()
