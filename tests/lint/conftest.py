"""Shared helpers for the linter's own tests.

Each test builds a throwaway project tree under ``tmp_path`` (so the
package-prefix logic sees realistic ``src/repro/...`` paths) and runs
the real pipeline through :func:`repro.lint.run_lint`.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import LintConfig, run_lint


class LintHarness:
    """A temp project the linter can be pointed at."""

    def __init__(self, root):
        self.root = root

    def write(self, rel: str, source: str) -> None:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")

    def run(self, *rules: str, paths: list[str] | None = None):
        config = LintConfig(select=frozenset(rules) if rules else None)
        return run_lint(
            paths or ["src"], config=config, root=str(self.root)
        )

    def findings(self, *rules: str, paths: list[str] | None = None):
        return self.run(*rules, paths=paths).findings


@pytest.fixture
def harness(tmp_path) -> LintHarness:
    return LintHarness(tmp_path)
