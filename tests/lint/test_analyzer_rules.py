"""Fixture tests for the call-graph-aware rules (QHL000, QHL007-QHL010)
and the interprocedural QHL001 upgrade.

Each rule gets at least one seeded violation that must fire and one
corrected form that must stay quiet — the rules' contract is exactness
on both sides, not just recall.
"""

from __future__ import annotations

import pytest


def _rules(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# QHL001 interprocedural upgrade


class TestInterproceduralDeadline:
    def test_checkpoint_through_callee_is_clean(self, harness):
        """The regression the upgrade exists for: a loop that delegates
        to a helper which (transitively) checks the deadline used to
        need blind forwarding credit; now the chain is verified."""
        harness.write(
            "src/repro/core/sample.py",
            """
            def _step(state, deadline):
                deadline.check()
                return state + 1

            def drive(items, deadline):
                state = 0
                for item in items:
                    state = _step(state, deadline)
                return state
            """,
        )
        assert harness.findings("QHL001") == []

    def test_two_hop_checkpoint_chain_is_clean(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def _leaf(deadline):
                deadline.check()

            def _mid(deadline):
                _leaf(deadline)

            def drive(items, deadline):
                for item in items:
                    _mid(deadline)
            """,
        )
        assert harness.findings("QHL001") == []

    def test_self_method_checkpoint_is_clean(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            class Engine:
                def _checkpoint(self, deadline):
                    deadline.check()

                def run(self, items, deadline):
                    for item in items:
                        self._checkpoint(deadline)
            """,
        )
        assert harness.findings("QHL001") == []

    def test_genuinely_uncheckpointed_loop_still_fires(self, harness):
        """The other half of the regression: delegation to a resolved
        helper that never checks is not credit."""
        harness.write(
            "src/repro/core/sample.py",
            """
            def _step(state):
                return state + 1

            def drive(items, deadline):
                state = 0
                for item in items:
                    state = _step(state)
                return state
            """,
        )
        findings = harness.findings("QHL001")
        assert _rules(findings) == ["QHL001"]
        assert "drive()" in findings[0].message

    def test_forwarding_into_a_sink_fires(self, harness):
        """Forwarding the deadline to a resolved function that never
        checks it was silently credited by the old rule; now it is its
        own finding."""
        harness.write(
            "src/repro/core/sample.py",
            """
            def _sink(item, deadline):
                return item

            def drive(items, deadline):
                out = []
                for item in items:
                    out.append(_sink(item, deadline))
                return out
            """,
        )
        findings = harness.findings("QHL001")
        assert _rules(findings) == ["QHL001"]
        assert "_sink" in findings[0].message

    def test_forwarding_to_unresolvable_callee_keeps_credit(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            import external

            def drive(items, deadline):
                for item in items:
                    external.answer(item, deadline=deadline)
            """,
        )
        assert harness.findings("QHL001") == []

    def test_depth_bound_cuts_off_deep_chains(self, harness):
        hops = "\n".join(
            f"def _h{i}(deadline):\n    _h{i + 1}(deadline)\n"
            for i in range(8)
        )
        harness.write(
            "src/repro/core/sample.py",
            f"""
{hops}
def _h8(deadline):
    deadline.check()

def drive(items, deadline):
    for item in items:
        _h0(deadline)
""",
        )
        # _h0 is 9 hops from the check; depth 5 must not credit it,
        # but the forward-sink path fires instead of the generic one.
        findings = harness.findings("QHL001")
        assert _rules(findings) == ["QHL001"]


# ----------------------------------------------------------------------
# QHL007 fork-safety


_POOL_STUB = """
class SupervisedPool:
    def __init__(self, entrypoint, **kwargs):
        self.entrypoint = entrypoint
"""


class TestForkSafety:
    def test_module_handle_used_by_entrypoint_fires(self, harness):
        harness.write("src/repro/supervise/pool.py", _POOL_STUB)
        harness.write(
            "src/repro/perf/sample.py",
            """
            from repro.supervise.pool import SupervisedPool

            _log = open("/tmp/worker.log", "a")

            def _chunk(payload):
                _log.write(str(payload))
                return payload

            def run():
                return SupervisedPool(_chunk, workers=2)
            """,
        )
        findings = harness.findings("QHL007")
        assert _rules(findings) == ["QHL007"]
        assert "open file handle" in findings[0].message
        assert "_chunk" in findings[0].message

    def test_lock_reached_through_helper_fires(self, harness):
        """Interprocedural: the capture sits in a helper the
        entrypoint calls, not in the entrypoint itself."""
        harness.write("src/repro/supervise/pool.py", _POOL_STUB)
        harness.write(
            "src/repro/perf/sample.py",
            """
            import threading

            from repro.supervise.pool import SupervisedPool

            _lock = threading.Lock()

            def _helper(payload):
                with _lock:
                    return payload

            def _chunk(payload):
                return _helper(payload)

            def run():
                return SupervisedPool(_chunk, workers=2)
            """,
        )
        findings = harness.findings("QHL007")
        assert _rules(findings) == ["QHL007"]
        assert "synchronisation primitive" in findings[0].message
        assert "_helper" in findings[0].message

    def test_rebound_in_child_is_clean(self, harness):
        harness.write("src/repro/supervise/pool.py", _POOL_STUB)
        harness.write(
            "src/repro/perf/sample.py",
            """
            from repro.supervise.pool import SupervisedPool

            _log = open("/tmp/parent.log", "a")

            def _chunk(payload, path):
                _log = open(path, "a")
                _log.write(str(payload))
                return payload

            def run():
                return SupervisedPool(_chunk, workers=2)
            """,
        )
        assert harness.findings("QHL007") == []

    def test_deadline_default_argument_fires(self, harness):
        harness.write("src/repro/supervise/pool.py", _POOL_STUB)
        harness.write(
            "src/repro/perf/sample.py",
            """
            from repro.service.deadline import Deadline
            from repro.supervise.pool import SupervisedPool

            def _chunk(payload, deadline=Deadline(50.0)):
                deadline.check()
                return payload

            def run():
                return SupervisedPool(_chunk, workers=2)
            """,
        )
        findings = harness.findings("QHL007")
        assert _rules(findings) == ["QHL007"]
        assert "default" in findings[0].message

    def test_function_not_reachable_from_entrypoint_is_clean(
        self, harness
    ):
        harness.write("src/repro/supervise/pool.py", _POOL_STUB)
        harness.write(
            "src/repro/perf/sample.py",
            """
            from repro.supervise.pool import SupervisedPool

            _log = open("/tmp/parent.log", "a")

            def _chunk(payload):
                return payload

            def parent_only():
                _log.write("parent side")

            def run():
                return SupervisedPool(_chunk, workers=2)
            """,
        )
        assert harness.findings("QHL007") == []


# ----------------------------------------------------------------------
# QHL008 durability discipline


class TestDurability:
    def test_bare_write_to_journal_path_fires(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            def save(journal_path, lines):
                with open(journal_path, "w") as handle:
                    handle.writelines(lines)
            """,
        )
        findings = harness.findings("QHL008")
        assert _rules(findings) == ["QHL008"]
        assert "atomic" in findings[0].message

    def test_atomic_writer_is_clean(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            import os

            def save(journal_path, data):
                tmp = journal_path + ".tmp"
                with open(tmp, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, journal_path)
            """,
        )
        assert harness.findings("QHL008") == []

    def test_append_without_fsync_fires(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            def append(journal_path, line):
                with open(journal_path, "a") as handle:
                    handle.write(line)
                    handle.flush()
            """,
        )
        findings = harness.findings("QHL008")
        assert _rules(findings) == ["QHL008"]
        assert "os.fsync" in findings[0].message

    def test_append_with_flush_and_fsync_is_clean(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            import os

            def append(journal_path, line):
                with open(journal_path, "a") as handle:
                    handle.write(line)
                    handle.flush()
                    os.fsync(handle.fileno())
            """,
        )
        assert harness.findings("QHL008") == []

    def test_append_fsync_through_helper_is_clean(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            import os

            def _sync(handle):
                handle.flush()
                os.fsync(handle.fileno())

            def append(journal_path, line):
                with open(journal_path, "a") as handle:
                    handle.write(line)
                    _sync(handle)
            """,
        )
        assert harness.findings("QHL008") == []

    def test_scratch_paths_are_out_of_scope(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            def save_report(report_path, text):
                with open(report_path, "w") as handle:
                    handle.write(text)
            """,
        )
        assert harness.findings("QHL008") == []

    def test_reads_never_fire(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            def load(journal_path):
                with open(journal_path) as handle:
                    return handle.read()
            """,
        )
        assert harness.findings("QHL008") == []


# ----------------------------------------------------------------------
# QHL009 epoch immutability


class TestEpochImmutability:
    def test_store_into_epoch_attribute_fires(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            from repro.dynamic.epochs import Epoch

            def rebadge(epoch: Epoch, seq: int) -> None:
                epoch.id = seq
            """,
        )
        findings = harness.findings("QHL009")
        assert _rules(findings) == ["QHL009"]
        assert "Epoch" in findings[0].message

    def test_mutating_method_on_store_attribute_fires(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            from repro.storage.flat import FlatLabelStore

            def grow(store: FlatLabelStore, items) -> None:
                store.hubs.extend(items)
            """,
        )
        findings = harness.findings("QHL009")
        assert _rules(findings) == ["QHL009"]

    def test_subscript_store_into_memoryview_fires(self, harness):
        harness.write(
            "src/repro/storage/sample.py",
            """
            def patch(buffer, index, value):
                view = memoryview(buffer)
                view[index] = value
            """,
        )
        findings = harness.findings("QHL009")
        assert _rules(findings) == ["QHL009"]

    def test_mutation_laundered_through_helper_fires(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            from repro.dynamic.epochs import Epoch

            def _rebadge(target, seq):
                target.id = seq

            def apply(epoch: Epoch, seq: int) -> None:
                _rebadge(epoch, seq)
            """,
        )
        findings = harness.findings("QHL009")
        rules = _rules(findings)
        # The helper mutates an (untyped) parameter — only the
        # call-site handing it a typed epoch is the violation.
        assert rules == ["QHL009"]
        assert "_rebadge" in findings[0].message

    def test_constructing_function_owns_its_value(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            from repro.dynamic.epochs import Epoch

            def build(dyn, config, now):
                epoch = Epoch(0, dyn, config, now)
                epoch.id = 1
                return epoch
            """,
        )
        assert harness.findings("QHL009") == []

    def test_protected_class_manages_itself(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            class Epoch:
                def __init__(self):
                    self.readers = 0

                def retain(self):
                    self.readers += 1
            """,
        )
        assert harness.findings("QHL009") == []

    def test_reads_are_clean(self, harness):
        harness.write(
            "src/repro/dynamic/sample.py",
            """
            from repro.dynamic.epochs import Epoch

            def describe(epoch: Epoch) -> str:
                return f"epoch {epoch.id}"
            """,
        )
        assert harness.findings("QHL009") == []


# ----------------------------------------------------------------------
# QHL010 registry reachability


class TestRegistryReachability:
    def _write_fault_registry(self, harness, *points: str) -> None:
        declared = ", ".join(repr(p) for p in points)
        harness.write(
            "src/repro/service/faults.py",
            f"""
            INJECTION_POINTS = ({declared},)

            class FaultInjector:
                def fire(self, point, **context):
                    return None
            """,
        )

    def test_never_fired_point_is_dead_taxonomy(self, harness):
        self._write_fault_registry(harness, "index-load", "ghost-point")
        harness.write(
            "src/repro/storage/sample.py",
            """
            from repro.service.faults import FaultInjector

            def load(injector: FaultInjector):
                injector.fire("index-load")
            """,
        )
        findings = harness.findings("QHL010")
        assert _rules(findings) == ["QHL010"]
        assert "ghost-point" in findings[0].message
        assert "never fired" in findings[0].message

    def test_point_fired_only_from_dead_code_fires(self, harness):
        self._write_fault_registry(harness, "index-load", "orphan-point")
        harness.write(
            "src/repro/storage/sample.py",
            """
            from repro.service.faults import FaultInjector

            def load(injector: FaultInjector):
                injector.fire("index-load")

            def _nobody_calls_this(injector: FaultInjector):
                injector.fire("orphan-point")
            """,
        )
        findings = harness.findings("QHL010")
        assert _rules(findings) == ["QHL010"]
        assert "orphan-point" in findings[0].message
        assert "unreachable" in findings[0].message

    def test_reachable_emission_is_clean(self, harness):
        self._write_fault_registry(harness, "index-load")
        harness.write(
            "src/repro/storage/sample.py",
            """
            from repro.service.faults import FaultInjector

            def load(injector: FaultInjector):
                injector.fire("index-load")
            """,
        )
        assert harness.findings("QHL010") == []

    def test_skips_on_partial_runs(self, harness):
        from repro.lint import LintConfig, run_lint

        self._write_fault_registry(harness, "index-load", "ghost-point")
        result = run_lint(
            ["src"],
            config=LintConfig(select=frozenset({"QHL010"})),
            root=str(harness.root),
            partial=True,
        )
        assert result.findings == []

    def test_skips_when_registry_outside_linted_set(self, harness):
        harness.write(
            "src/repro/storage/sample.py",
            """
            def load():
                return 1
            """,
        )
        # No registry module in the tree at all: rule must stay quiet
        # rather than guess (QHL004/QHL005 own the hard-failure path).
        assert harness.findings("QHL010") == []


# ----------------------------------------------------------------------
# QHL000 stale pragmas


class TestStalePragmas:
    def test_pragma_suppressing_live_finding_is_kept(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def drive(items, deadline):
                for item in items:  # lint: allow=QHL001 bounded by degree
                    print(item)
            """,
        )
        result = harness.run("QHL000", "QHL001")
        assert result.findings == []
        assert [f.rule for f in result.inline_suppressed] == ["QHL001"]

    def test_pragma_with_no_finding_is_stale(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def drive(items, deadline):
                for item in items:  # lint: allow=QHL001 obsolete
                    deadline.check()
            """,
        )
        findings = harness.findings("QHL000", "QHL001")
        assert _rules(findings) == ["QHL000"]
        assert "stale pragma" in findings[0].message

    def test_pragma_for_rule_that_did_not_run_is_not_stale(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def drive(items, deadline):
                for item in items:  # lint: allow=QHL001 obsolete
                    deadline.check()
            """,
        )
        # Only QHL000 selected: QHL001 never ran, absence of a finding
        # proves nothing.
        assert harness.findings("QHL000") == []

    def test_unknown_rule_pragma_always_fires(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def drive(items):
                return sorted(items)  # lint: allow=QHL999 misremembered
            """,
        )
        findings = harness.findings("QHL000")
        assert _rules(findings) == ["QHL000"]
        assert "unknown rule" in findings[0].message

    def test_stale_pragma_finding_is_itself_suppressible(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def drive(items, deadline):
                for item in items:  # lint: allow=QHL001,QHL000 docs fixture
                    deadline.check()
            """,
        )
        result = harness.run("QHL000", "QHL001")
        assert result.findings == []
        assert [f.rule for f in result.inline_suppressed] == ["QHL000"]
