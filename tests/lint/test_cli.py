"""CLI contract tests: exit codes, JSON report, rule listing, and the
baseline add/expire workflow."""

from __future__ import annotations

import json

import pytest

from repro.lint.cli import main


@pytest.fixture(autouse=True)
def _registries(harness):
    # A full CLI run executes QHL004/QHL005, which insist their name
    # registries exist.  Park minimal ones outside src/ so the disk
    # fallback finds them without them entering the scanned module set.
    harness.write(
        "repro/observability/names.py",
        'METRICS = {"qhl_test_total": ("counter", (), "fixture")}\n',
    )
    harness.write(
        "repro/service/faults.py",
        'INJECTION_POINTS = ("index-load",)\n',
    )


_CLEAN = """
def helper(items):
    return sorted(items)
"""

_DIRTY = """
import random

rng = random.Random()
"""


def _lint(harness, *extra: str) -> int:
    return main(["src", "--root", str(harness.root), *extra])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _CLEAN)
        assert _lint(harness) == 0
        out = capsys.readouterr().out
        assert "checked 1 files, 0 finding(s)" in out

    def test_findings_exit_one(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _DIRTY)
        assert _lint(harness) == 1
        out = capsys.readouterr().out
        assert "QHL003" in out
        assert "1 finding(s)" in out

    def test_syntax_error_exits_two(self, harness, capsys):
        harness.write("src/repro/core/sample.py", "def broken(:\n")
        assert _lint(harness) == 2
        out = capsys.readouterr().out
        assert "error" in out.lower()

    def test_unknown_rule_exits_two(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _CLEAN)
        assert _lint(harness, "--select", "QHL099") == 2
        err = capsys.readouterr().err
        assert "unknown rule id" in err

    def test_missing_path_exits_two(self, harness, capsys):
        assert main(["no/such/dir", "--root", str(harness.root)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_select_scopes_the_run(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _DIRTY)
        assert _lint(harness, "--select", "QHL001") == 0
        capsys.readouterr()


class TestJsonReport:
    def test_payload_shape(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _DIRTY)
        assert _lint(harness, "--json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["baselined"] == []
        assert payload["stale_baseline"] == []
        assert payload["errors"] == []
        (finding,) = payload["findings"]
        assert finding["rule"] == "QHL003"
        assert finding["path"] == "src/repro/core/sample.py"
        assert finding["line"] == 4
        assert finding["fingerprint"]

    def test_inline_suppressions_reported(self, harness, capsys):
        harness.write(
            "src/repro/core/sample.py",
            """
            import random

            rng = random.Random()  # lint: allow=QHL003 fixture jitter
            """,
        )
        assert _lint(harness, "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        (suppressed,) = payload["inline_suppressed"]
        assert suppressed["rule"] == "QHL003"


class TestListRules:
    def test_catalog_lists_all_six(self, harness, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "QHL001",
            "QHL002",
            "QHL003",
            "QHL004",
            "QHL005",
            "QHL006",
        ):
            assert rule_id in out


class TestBaselineWorkflow:
    def test_add_then_expire(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _DIRTY)

        # 1. Grandfather the finding.
        assert _lint(harness, "--write-baseline") == 0
        assert "wrote 1 baseline entries" in capsys.readouterr().out
        baseline_file = harness.root / "lint-baseline.json"
        payload = json.loads(baseline_file.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        (entry,) = payload["entries"]
        assert entry["rule"] == "QHL003"
        assert entry["reason"] == "grandfathered"

        # 2. Baselined finding no longer fails the gate...
        assert _lint(harness, "--strict-exit") == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

        # ...but --no-baseline still reports it.
        assert _lint(harness, "--no-baseline") == 1
        capsys.readouterr()

        # 3. Fix the code: the entry is now stale.  Plain run still
        # passes; the CI gate demands the baseline shrink.
        harness.write("src/repro/core/sample.py", _CLEAN)
        assert _lint(harness) == 0
        assert "1 stale baseline" in capsys.readouterr().out
        assert _lint(harness, "--strict-exit") == 1
        capsys.readouterr()

        # 4. Refresh: stale entries are dropped and the gate is green.
        assert _lint(harness, "--write-baseline") == 0
        assert "wrote 0 baseline entries" in capsys.readouterr().out
        assert _lint(harness, "--strict-exit") == 0
        capsys.readouterr()

    def test_write_baseline_preserves_reasons(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _DIRTY)
        assert _lint(harness, "--write-baseline") == 0
        baseline_file = harness.root / "lint-baseline.json"
        payload = json.loads(baseline_file.read_text(encoding="utf-8"))
        payload["entries"][0]["reason"] = "jitter audit pending (#42)"
        baseline_file.write_text(json.dumps(payload), encoding="utf-8")

        assert _lint(harness, "--write-baseline") == 0
        payload = json.loads(baseline_file.read_text(encoding="utf-8"))
        assert payload["entries"][0]["reason"] == "jitter audit pending (#42)"
        capsys.readouterr()

    def test_malformed_baseline_exits_two(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _CLEAN)
        (harness.root / "lint-baseline.json").write_text(
            "{not json", encoding="utf-8"
        )
        assert _lint(harness) == 2
        assert "error:" in capsys.readouterr().err

    def test_write_baseline_refuses_on_errors(self, harness, capsys):
        harness.write("src/repro/core/sample.py", "def broken(:\n")
        assert _lint(harness, "--write-baseline") == 2
        capsys.readouterr()


class TestFingerprintStability:
    def test_fingerprint_survives_line_moves(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _DIRTY)
        assert _lint(harness, "--json") == 1
        first = json.loads(capsys.readouterr().out)["findings"][0]

        harness.write(
            "src/repro/core/sample.py",
            """
            import random

            PADDING = "pushes the violation down a few lines"


            rng = random.Random()
            """,
        )
        assert _lint(harness, "--json") == 1
        second = json.loads(capsys.readouterr().out)["findings"][0]
        assert second["line"] != first["line"]
        assert second["fingerprint"] == first["fingerprint"]


@pytest.mark.parametrize("flag", ["--json", None])
def test_main_cli_exposes_lint_subcommand(harness, capsys, flag):
    from repro.cli import main as repro_main

    harness.write("src/repro/core/sample.py", _CLEAN)
    argv = ["lint", "src", "--root", str(harness.root)]
    if flag:
        argv.append(flag)
    assert repro_main(argv) == 0
    capsys.readouterr()


class TestGraphOut:
    def test_graph_export_writes_json(self, harness, capsys, tmp_path):
        harness.write(
            "src/repro/core/sample.py",
            """
def public():
    return _private()

def _private():
    return 1
""",
        )
        out = tmp_path / "graph.json"
        assert _lint(harness, "--graph-out", str(out)) == 0
        capsys.readouterr()
        data = json.loads(out.read_text())
        assert data["version"] == 1
        qnames = {f["qname"] for f in data["functions"]}
        assert "repro.core.sample.public" in qnames
        assert ["repro.core.sample.public", "repro.core.sample._private"] in (
            data["edges"]
        )

    def test_graph_export_does_not_change_exit_code(
        self, harness, capsys, tmp_path
    ):
        harness.write("src/repro/core/sample.py", _DIRTY)
        out = tmp_path / "graph.json"
        assert _lint(harness, "--graph-out", str(out)) == 1
        capsys.readouterr()
        assert out.exists()


class TestChangedMode:
    def _git(self, harness, *argv: str) -> None:
        import subprocess

        subprocess.run(
            ["git", *argv],
            cwd=str(harness.root),
            check=True,
            capture_output=True,
            env={
                "PATH": __import__("os").environ["PATH"],
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@example.com",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@example.com",
                "HOME": str(harness.root),
            },
        )

    def _init_repo(self, harness) -> None:
        self._git(harness, "init", "-q")
        self._git(harness, "add", "-A")
        self._git(harness, "commit", "-q", "-m", "seed")

    def test_lints_only_changed_files(self, harness, capsys):
        harness.write("src/repro/core/clean.py", _CLEAN)
        harness.write("src/repro/core/dirty.py", _CLEAN)
        self._init_repo(harness)
        # dirty.py gains a violation after the commit; clean.py gains
        # one too but stays committed-identical, so only dirty.py is
        # linted.
        harness.write("src/repro/core/dirty.py", _DIRTY)
        assert _lint(harness, "--changed", "HEAD") == 1
        out = capsys.readouterr().out
        assert "dirty.py" in out
        assert "checked 1 files" in out

    def test_untracked_files_are_included(self, harness, capsys):
        harness.write("src/repro/core/clean.py", _CLEAN)
        self._init_repo(harness)
        harness.write("src/repro/core/fresh.py", _DIRTY)
        assert _lint(harness, "--changed") == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out

    def test_no_changes_exits_zero(self, harness, capsys):
        harness.write("src/repro/core/clean.py", _CLEAN)
        self._init_repo(harness)
        assert _lint(harness, "--changed", "HEAD") == 0
        out = capsys.readouterr().out
        assert "nothing to lint" in out

    def test_bad_ref_exits_two(self, harness, capsys):
        harness.write("src/repro/core/clean.py", _CLEAN)
        self._init_repo(harness)
        assert _lint(harness, "--changed", "no-such-ref") == 2
        capsys.readouterr()

    def test_changed_runs_are_partial(self, harness, capsys):
        # A whole-program rule (QHL010) must not judge registry
        # completeness from a one-file slice: registry declares a point
        # fired only by an *unchanged* (so unlinted) module.
        harness.write(
            "src/repro/service/faults.py",
            'INJECTION_POINTS = ("index-load",)\n'
            "class FaultInjector:\n"
            "    def fire(self, point, **context):\n"
            "        return None\n",
        )
        harness.write(
            "src/repro/storage/loader.py",
            "from repro.service.faults import FaultInjector\n\n\n"
            "def load(injector: FaultInjector):\n"
            '    injector.fire("index-load")\n',
        )
        self._init_repo(harness)
        harness.write(
            "src/repro/service/faults.py",
            'INJECTION_POINTS = ("index-load",)\n'
            "class FaultInjector:\n"
            "    def fire(self, point, **context):\n"
            "        return None\n"
            "\n\ndef helper():\n    return None\n",
        )
        assert _lint(harness, "--changed", "HEAD") == 0
        capsys.readouterr()
