"""CLI contract tests: exit codes, JSON report, rule listing, and the
baseline add/expire workflow."""

from __future__ import annotations

import json

import pytest

from repro.lint.cli import main


@pytest.fixture(autouse=True)
def _registries(harness):
    # A full CLI run executes QHL004/QHL005, which insist their name
    # registries exist.  Park minimal ones outside src/ so the disk
    # fallback finds them without them entering the scanned module set.
    harness.write(
        "repro/observability/names.py",
        'METRICS = {"qhl_test_total": ("counter", (), "fixture")}\n',
    )
    harness.write(
        "repro/service/faults.py",
        'INJECTION_POINTS = ("index-load",)\n',
    )


_CLEAN = """
def helper(items):
    return sorted(items)
"""

_DIRTY = """
import random

rng = random.Random()
"""


def _lint(harness, *extra: str) -> int:
    return main(["src", "--root", str(harness.root), *extra])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _CLEAN)
        assert _lint(harness) == 0
        out = capsys.readouterr().out
        assert "checked 1 files, 0 finding(s)" in out

    def test_findings_exit_one(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _DIRTY)
        assert _lint(harness) == 1
        out = capsys.readouterr().out
        assert "QHL003" in out
        assert "1 finding(s)" in out

    def test_syntax_error_exits_two(self, harness, capsys):
        harness.write("src/repro/core/sample.py", "def broken(:\n")
        assert _lint(harness) == 2
        out = capsys.readouterr().out
        assert "error" in out.lower()

    def test_unknown_rule_exits_two(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _CLEAN)
        assert _lint(harness, "--select", "QHL099") == 2
        err = capsys.readouterr().err
        assert "unknown rule id" in err

    def test_missing_path_exits_two(self, harness, capsys):
        assert main(["no/such/dir", "--root", str(harness.root)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_select_scopes_the_run(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _DIRTY)
        assert _lint(harness, "--select", "QHL001") == 0
        capsys.readouterr()


class TestJsonReport:
    def test_payload_shape(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _DIRTY)
        assert _lint(harness, "--json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["baselined"] == []
        assert payload["stale_baseline"] == []
        assert payload["errors"] == []
        (finding,) = payload["findings"]
        assert finding["rule"] == "QHL003"
        assert finding["path"] == "src/repro/core/sample.py"
        assert finding["line"] == 4
        assert finding["fingerprint"]

    def test_inline_suppressions_reported(self, harness, capsys):
        harness.write(
            "src/repro/core/sample.py",
            """
            import random

            rng = random.Random()  # lint: allow=QHL003 fixture jitter
            """,
        )
        assert _lint(harness, "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        (suppressed,) = payload["inline_suppressed"]
        assert suppressed["rule"] == "QHL003"


class TestListRules:
    def test_catalog_lists_all_six(self, harness, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "QHL001",
            "QHL002",
            "QHL003",
            "QHL004",
            "QHL005",
            "QHL006",
        ):
            assert rule_id in out


class TestBaselineWorkflow:
    def test_add_then_expire(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _DIRTY)

        # 1. Grandfather the finding.
        assert _lint(harness, "--write-baseline") == 0
        assert "wrote 1 baseline entries" in capsys.readouterr().out
        baseline_file = harness.root / "lint-baseline.json"
        payload = json.loads(baseline_file.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        (entry,) = payload["entries"]
        assert entry["rule"] == "QHL003"
        assert entry["reason"] == "grandfathered"

        # 2. Baselined finding no longer fails the gate...
        assert _lint(harness, "--strict-exit") == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

        # ...but --no-baseline still reports it.
        assert _lint(harness, "--no-baseline") == 1
        capsys.readouterr()

        # 3. Fix the code: the entry is now stale.  Plain run still
        # passes; the CI gate demands the baseline shrink.
        harness.write("src/repro/core/sample.py", _CLEAN)
        assert _lint(harness) == 0
        assert "1 stale baseline" in capsys.readouterr().out
        assert _lint(harness, "--strict-exit") == 1
        capsys.readouterr()

        # 4. Refresh: stale entries are dropped and the gate is green.
        assert _lint(harness, "--write-baseline") == 0
        assert "wrote 0 baseline entries" in capsys.readouterr().out
        assert _lint(harness, "--strict-exit") == 0
        capsys.readouterr()

    def test_write_baseline_preserves_reasons(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _DIRTY)
        assert _lint(harness, "--write-baseline") == 0
        baseline_file = harness.root / "lint-baseline.json"
        payload = json.loads(baseline_file.read_text(encoding="utf-8"))
        payload["entries"][0]["reason"] = "jitter audit pending (#42)"
        baseline_file.write_text(json.dumps(payload), encoding="utf-8")

        assert _lint(harness, "--write-baseline") == 0
        payload = json.loads(baseline_file.read_text(encoding="utf-8"))
        assert payload["entries"][0]["reason"] == "jitter audit pending (#42)"
        capsys.readouterr()

    def test_malformed_baseline_exits_two(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _CLEAN)
        (harness.root / "lint-baseline.json").write_text(
            "{not json", encoding="utf-8"
        )
        assert _lint(harness) == 2
        assert "error:" in capsys.readouterr().err

    def test_write_baseline_refuses_on_errors(self, harness, capsys):
        harness.write("src/repro/core/sample.py", "def broken(:\n")
        assert _lint(harness, "--write-baseline") == 2
        capsys.readouterr()


class TestFingerprintStability:
    def test_fingerprint_survives_line_moves(self, harness, capsys):
        harness.write("src/repro/core/sample.py", _DIRTY)
        assert _lint(harness, "--json") == 1
        first = json.loads(capsys.readouterr().out)["findings"][0]

        harness.write(
            "src/repro/core/sample.py",
            """
            import random

            PADDING = "pushes the violation down a few lines"


            rng = random.Random()
            """,
        )
        assert _lint(harness, "--json") == 1
        second = json.loads(capsys.readouterr().out)["findings"][0]
        assert second["line"] != first["line"]
        assert second["fingerprint"] == first["fingerprint"]


@pytest.mark.parametrize("flag", ["--json", None])
def test_main_cli_exposes_lint_subcommand(harness, capsys, flag):
    from repro.cli import main as repro_main

    harness.write("src/repro/core/sample.py", _CLEAN)
    argv = ["lint", "src", "--root", str(harness.root)]
    if flag:
        argv.append(flag)
    assert repro_main(argv) == 0
    capsys.readouterr()
