"""Call-graph builder tests on adversarial shapes.

The whole-program rules are only as good as the graph under them, so
these tests pin the resolver on the shapes that break naive builders:
call cycles, decorated functions, aliased and re-exported imports,
method calls through ``self``, and worker entrypoints spelled as
strings or ``functools.partial`` objects.
"""

from __future__ import annotations

import pytest

from repro.lint import LintConfig, run_lint
from repro.lint.rules.base import Project
from repro.lint.context import Module


def _project(harness, *rels: str) -> Project:
    result = run_lint(
        ["src"], config=LintConfig(select=frozenset()), root=str(harness.root)
    )
    assert result.errors == []
    assert result.project is not None
    return result.project


class TestEdgesAndCycles:
    def test_direct_call_edge(self, harness):
        harness.write(
            "src/repro/core/a.py",
            """
            def callee():
                return 1

            def caller():
                return callee()
            """,
        )
        graph = _project(harness).graph()
        assert "repro.core.a.callee" in graph.callees("repro.core.a.caller")

    def test_cycle_terminates_and_keeps_both_edges(self, harness):
        harness.write(
            "src/repro/core/a.py",
            """
            def ping(n):
                return pong(n - 1) if n else 0

            def pong(n):
                return ping(n - 1) if n else 0
            """,
        )
        graph = _project(harness).graph()
        assert "repro.core.a.pong" in graph.callees("repro.core.a.ping")
        assert "repro.core.a.ping" in graph.callees("repro.core.a.pong")
        # Reachability over the cycle must terminate.
        closure = graph.reachable_from({"repro.core.a.ping"})
        assert {"repro.core.a.ping", "repro.core.a.pong"} <= closure

    def test_decorated_function_still_resolves(self, harness):
        harness.write(
            "src/repro/core/a.py",
            """
            import functools

            def wrap(func):
                @functools.wraps(func)
                def inner(*args, **kwargs):
                    return func(*args, **kwargs)
                return inner

            @wrap
            def decorated():
                return 1

            def caller():
                return decorated()
            """,
        )
        graph = _project(harness).graph()
        assert "repro.core.a.decorated" in graph.functions
        assert "repro.core.a.decorated" in graph.callees(
            "repro.core.a.caller"
        )

    def test_nested_function_gets_locals_qname(self, harness):
        harness.write(
            "src/repro/core/a.py",
            """
            def outer():
                def inner():
                    return 1
                return inner()
            """,
        )
        graph = _project(harness).graph()
        assert "repro.core.a.outer.<locals>.inner" in graph.functions
        assert "repro.core.a.outer.<locals>.inner" in graph.callees(
            "repro.core.a.outer"
        )


class TestImportResolution:
    def test_aliased_import(self, harness):
        harness.write(
            "src/repro/core/util.py",
            """
            def helper():
                return 1
            """,
        )
        harness.write(
            "src/repro/core/a.py",
            """
            from repro.core.util import helper as h

            def caller():
                return h()
            """,
        )
        graph = _project(harness).graph()
        assert "repro.core.util.helper" in graph.callees(
            "repro.core.a.caller"
        )

    def test_module_alias_attribute_call(self, harness):
        harness.write(
            "src/repro/core/util.py",
            """
            def helper():
                return 1
            """,
        )
        harness.write(
            "src/repro/core/a.py",
            """
            import repro.core.util as util

            def caller():
                return util.helper()
            """,
        )
        graph = _project(harness).graph()
        assert "repro.core.util.helper" in graph.callees(
            "repro.core.a.caller"
        )

    def test_reexport_chain_follows_to_definition(self, harness):
        harness.write(
            "src/repro/core/impl.py",
            """
            def real():
                return 1
            """,
        )
        harness.write(
            "src/repro/core/__init__.py",
            """
            from repro.core.impl import real
            """,
        )
        harness.write(
            "src/repro/service/a.py",
            """
            from repro.core import real

            def caller():
                return real()
            """,
        )
        graph = _project(harness).graph()
        assert "repro.core.impl.real" in graph.callees(
            "repro.service.a.caller"
        )


class TestMethodResolution:
    def test_self_method_call(self, harness):
        harness.write(
            "src/repro/core/a.py",
            """
            class Engine:
                def query(self):
                    return self._inner()

                def _inner(self):
                    return 1
            """,
        )
        graph = _project(harness).graph()
        assert "repro.core.a.Engine._inner" in graph.callees(
            "repro.core.a.Engine.query"
        )

    def test_inherited_method_via_self(self, harness):
        harness.write(
            "src/repro/core/a.py",
            """
            class Base:
                def shared(self):
                    return 1

            class Derived(Base):
                def query(self):
                    return self.shared()
            """,
        )
        graph = _project(harness).graph()
        assert "repro.core.a.Base.shared" in graph.callees(
            "repro.core.a.Derived.query"
        )

    def test_typed_attribute_method_call(self, harness):
        harness.write(
            "src/repro/core/a.py",
            """
            class Store:
                def get(self):
                    return 1

            class Engine:
                def __init__(self):
                    self.store = Store()

                def query(self):
                    return self.store.get()
            """,
        )
        graph = _project(harness).graph()
        assert "repro.core.a.Store.get" in graph.callees(
            "repro.core.a.Engine.query"
        )


class TestSpawnSites:
    def test_supervised_pool_positional_entrypoint(self, harness):
        harness.write(
            "src/repro/perf/a.py",
            """
            from repro.supervise.pool import SupervisedPool

            def _chunk(payload):
                return payload

            def run():
                pool = SupervisedPool(_chunk, workers=2)
                return pool
            """,
        )
        graph = _project(harness).graph()
        assert graph.fork_entries() == {"repro.perf.a._chunk"}
        (site,) = graph.spawn_sites
        assert site.api == "SupervisedPool"
        assert site.caller == "repro.perf.a.run"

    def test_partial_entrypoint_unwraps(self, harness):
        harness.write(
            "src/repro/perf/a.py",
            """
            import functools

            from repro.supervise.pool import SupervisedPool

            def _chunk(config, payload):
                return payload

            def run(config):
                pool = SupervisedPool(
                    functools.partial(_chunk, config), workers=2
                )
                return pool
            """,
        )
        graph = _project(harness).graph()
        assert graph.fork_entries() == {"repro.perf.a._chunk"}

    def test_string_entrypoint_resolves(self, harness):
        harness.write(
            "src/repro/perf/worker.py",
            """
            def entry(payload):
                return payload
            """,
        )
        harness.write(
            "src/repro/perf/a.py",
            """
            from repro.supervise.pool import SupervisedPool

            def run():
                return SupervisedPool(
                    "repro.perf.worker:entry", workers=2
                )
            """,
        )
        graph = _project(harness).graph()
        assert graph.fork_entries() == {"repro.perf.worker.entry"}

    def test_executor_initializer_and_submit(self, harness):
        harness.write(
            "src/repro/perf/a.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def _init(engine):
                return None

            def _task(chunk):
                return chunk

            def run(chunks):
                with ProcessPoolExecutor(initializer=_init) as pool:
                    futures = [pool.submit(_task, c) for c in chunks]
                return futures
            """,
        )
        graph = _project(harness).graph()
        assert graph.fork_entries() == {
            "repro.perf.a._init",
            "repro.perf.a._task",
        }


class TestReachability:
    def test_private_function_unreachable_without_callers(self, harness):
        harness.write(
            "src/repro/core/a.py",
            """
            def public():
                return 1

            def _orphan():
                return 2
            """,
        )
        graph = _project(harness).graph()
        reachable = graph.reachable()
        assert "repro.core.a.public" in reachable
        assert "repro.core.a._orphan" not in reachable

    def test_reference_without_call_keeps_function_live(self, harness):
        harness.write(
            "src/repro/core/a.py",
            """
            def _target(x):
                return x

            def public(items):
                return sorted(items, key=lambda i: _target(i))
            """,
        )
        graph = _project(harness).graph()
        assert "repro.core.a._target" in graph.reachable()

    def test_export_to_json_shape(self, harness):
        harness.write(
            "src/repro/core/a.py",
            """
            def public():
                return _private()

            def _private():
                return 1
            """,
        )
        import json

        graph = _project(harness).graph()
        data = json.loads(graph.to_json())
        assert data["version"] == 1
        assert "repro.core.a" in data["modules"]
        qnames = {f["qname"] for f in data["functions"]}
        assert {"repro.core.a.public", "repro.core.a._private"} <= qnames
        assert ["repro.core.a.public", "repro.core.a._private"] in (
            data["edges"]
        )
