"""docs/observability.md must stay in sync with the metric-name
registry (`repro.observability.names.METRIC_NAMES`) — the same registry
lint rule QHL004 checks the code against."""

from __future__ import annotations

import pathlib
import re

from repro.observability.names import METRIC_NAMES

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs" / "observability.md"

_TOKEN = re.compile(
    r"`((?:qhl|service|ingest|audit|build|supervisor|update)"
    r"_[a-z0-9_]*\*?)`"
)


def _documented() -> tuple[set[str], set[str]]:
    """Backticked metric tokens in the doc: (concrete names, wildcard prefixes)."""
    text = DOC.read_text(encoding="utf-8")
    concrete: set[str] = set()
    wildcards: set[str] = set()
    for token in _TOKEN.findall(text):
        if token.endswith("*"):
            wildcards.add(token[:-1])
        else:
            concrete.add(token)
    return concrete, wildcards


def test_doc_mentions_only_registered_metrics():
    concrete, wildcards = _documented()
    assert concrete, "doc parser found no metric names — regex rot?"
    phantom = concrete - set(METRIC_NAMES)
    assert not phantom, (
        f"docs/observability.md documents metrics the registry does not "
        f"declare: {sorted(phantom)}"
    )
    for prefix in wildcards:
        assert any(name.startswith(prefix) for name in METRIC_NAMES), (
            f"wildcard `{prefix}*` in the doc matches no registered metric"
        )


def test_every_registered_metric_is_documented():
    concrete, wildcards = _documented()
    undocumented = {
        name
        for name in METRIC_NAMES
        if name not in concrete
        and not any(name.startswith(p) for p in wildcards)
    }
    assert not undocumented, (
        f"metrics declared in repro.observability.names but missing from "
        f"docs/observability.md: {sorted(undocumented)}"
    )
