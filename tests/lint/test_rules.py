"""Per-rule fixture tests: each rule fires on a seeded violation and
stays quiet on the corrected form."""

from __future__ import annotations

import pytest

from repro.exceptions import LintConfigError


def _rules(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# QHL001 deadline-checkpoint


class TestDeadlineCheckpoint:
    def test_fires_on_unchecked_loop(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def query(items, deadline):
                total = 0
                for item in items:
                    total += item
                return total
            """,
        )
        findings = harness.findings("QHL001")
        assert _rules(findings) == ["QHL001"]
        assert "query()" in findings[0].message

    def test_quiet_when_loop_checks(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def query(items, deadline):
                total = 0
                for item in items:
                    if deadline is not None:
                        deadline.check()
                    total += item
                return total
            """,
        )
        assert harness.findings("QHL001") == []

    def test_masked_check_counts(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def search(heap, deadline):
                pops = 0
                while heap:
                    pops += 1
                    if not pops & 0xFF:
                        deadline.check()
                    heap.pop()
            """,
        )
        assert harness.findings("QHL001") == []

    def test_forwarding_counts_as_checkpoint(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def batch(queries, deadline):
                out = []
                for q in queries:
                    out.append(answer(q, deadline=deadline))
                return out
            """,
        )
        assert harness.findings("QHL001") == []

    def test_literal_tuple_loop_exempt(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def ends(s, t, deadline):
                for v_end in (s, t):
                    record(v_end)
                deadline.check()
            """,
        )
        assert harness.findings("QHL001") == []

    def test_annotation_marks_parameter(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def run(items, budget: "Deadline | None" = None):
                for item in items:
                    use(item)
            """,
        )
        assert _rules(harness.findings("QHL001")) == ["QHL001"]

    def test_function_without_deadline_ignored(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def plain(items):
                for item in items:
                    use(item)
            """,
        )
        assert harness.findings("QHL001") == []


# ----------------------------------------------------------------------
# QHL002 exception-taxonomy


class TestExceptionTaxonomy:
    def test_fires_on_foreign_builtin_raise(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def load():
                raise RuntimeError("boom")
            """,
        )
        findings = harness.findings("QHL002")
        assert _rules(findings) == ["QHL002"]
        assert "RuntimeError" in findings[0].message

    def test_quiet_on_repro_error_subclass(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            from repro.exceptions import ReproError

            class LocalError(ReproError):
                pass

            def load():
                raise LocalError("boom")
            """,
        )
        assert harness.findings("QHL002") == []

    def test_subclass_recognised_across_modules(self, harness):
        harness.write(
            "src/repro/exceptions.py",
            """
            class ReproError(Exception):
                pass

            class QueryError(ReproError):
                pass
            """,
        )
        harness.write(
            "src/repro/core/sample.py",
            """
            def load():
                raise QueryError("bad vertex")
            """,
        )
        assert harness.findings("QHL002") == []

    def test_quiet_on_sanctioned_builtin(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def pick(n):
                if n < 0:
                    raise ValueError("n must be >= 0")
            """,
        )
        assert harness.findings("QHL002") == []

    def test_fires_on_swallowing_broad_except(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def guarded():
                try:
                    risky()
                except Exception:
                    return None
            """,
        )
        findings = harness.findings("QHL002")
        assert _rules(findings) == ["QHL002"]
        assert "swallows" in findings[0].message

    def test_fires_on_bare_except(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def guarded():
                try:
                    risky()
                except:
                    pass
            """,
        )
        assert _rules(harness.findings("QHL002")) == ["QHL002"]

    def test_quiet_when_broad_except_reraises(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            from repro.exceptions import ReproError

            def guarded():
                try:
                    risky()
                except Exception as exc:
                    raise ReproError("wrapped") from exc
            """,
        )
        assert harness.findings("QHL002") == []

    def test_quiet_on_narrow_except(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def guarded():
                try:
                    risky()
                except ValueError:
                    return None
            """,
        )
        assert harness.findings("QHL002") == []


# ----------------------------------------------------------------------
# QHL003 determinism


class TestDeterminism:
    def test_fires_on_wall_clock(self, harness):
        harness.write(
            "src/repro/skyline/sample.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        findings = harness.findings("QHL003")
        assert _rules(findings) == ["QHL003"]
        assert "time.time()" in findings[0].message

    def test_fires_on_global_rng(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert _rules(harness.findings("QHL003")) == ["QHL003"]

    def test_fires_on_unseeded_instance(self, harness):
        harness.write(
            "src/repro/labeling/sample.py",
            """
            import random

            rng = random.Random()
            """,
        )
        findings = harness.findings("QHL003")
        assert _rules(findings) == ["QHL003"]
        assert "unseeded" in findings[0].message

    def test_quiet_on_seeded_instance_and_perf_counter(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            import random
            import time

            def build(seed):
                rng = random.Random(seed)
                started = time.perf_counter()
                return rng.random(), time.perf_counter() - started
            """,
        )
        assert harness.findings("QHL003") == []

    def test_impure_packages_exempt(self, harness):
        harness.write(
            "src/repro/service/sample.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert harness.findings("QHL003") == []


# ----------------------------------------------------------------------
# QHL004 metric-name registry

_REGISTRY = """
METRICS = {
    "qhl_test_seconds": ("histogram", (), "test latency"),
    "qhl_test_total": ("counter", (), "test counter"),
}
"""


class TestMetricNameRegistry:
    def test_fires_on_undeclared_emission(self, harness):
        harness.write("src/repro/observability/names.py", _REGISTRY)
        harness.write(
            "src/repro/core/sample.py",
            """
            def observe(registry):
                registry.counter("qhl_test_total").inc()
                registry.histogram("qhl_test_seconds").observe(1.0)
                registry.counter("qhl_bogus_total").inc()
            """,
        )
        findings = harness.findings("QHL004")
        assert _rules(findings) == ["QHL004"]
        assert "qhl_bogus_total" in findings[0].message

    def test_fires_on_dead_registry_entry(self, harness):
        harness.write("src/repro/observability/names.py", _REGISTRY)
        harness.write(
            "src/repro/core/sample.py",
            """
            def observe(registry):
                registry.counter("qhl_test_total").inc()
            """,
        )
        findings = harness.findings("QHL004")
        assert _rules(findings) == ["QHL004"]
        assert "qhl_test_seconds" in findings[0].message
        assert "never" in findings[0].message

    def test_quiet_when_registry_and_code_agree(self, harness):
        harness.write("src/repro/observability/names.py", _REGISTRY)
        harness.write(
            "src/repro/core/sample.py",
            """
            def observe(registry):
                registry.counter("qhl_test_total").inc()
                registry.histogram("qhl_test_seconds").observe(1.0)
            """,
        )
        assert harness.findings("QHL004") == []

    def test_bare_literal_credits_usage(self, harness):
        # The tuple-of-names idiom: names fed to factories through a
        # loop variable still count as emissions.
        harness.write("src/repro/observability/names.py", _REGISTRY)
        harness.write(
            "src/repro/core/sample.py",
            """
            NAMES = ("qhl_test_total", "qhl_test_seconds")

            def observe(registry):
                for name in NAMES:
                    registry.counter(name).inc()
            """,
        )
        assert harness.findings("QHL004") == []

    def test_unused_direction_skipped_on_partial_lint(self, harness):
        # Linting one file (registry not in the path set) must not
        # flag every metric that file happens not to emit.
        harness.write("src/repro/observability/names.py", _REGISTRY)
        harness.write(
            "src/repro/core/sample.py",
            """
            def observe(registry):
                registry.counter("qhl_test_total").inc()
            """,
        )
        findings = harness.findings(
            "QHL004", paths=["src/repro/core/sample.py"]
        )
        assert findings == []

    def test_missing_registry_fails_loudly(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def observe(registry):
                registry.counter("qhl_test_total").inc()
            """,
        )
        with pytest.raises(LintConfigError):
            harness.run("QHL004")


# ----------------------------------------------------------------------
# QHL005 fault-point registry

_FAULTS = """
INJECTION_POINTS = (
    "index-load",
    "save-index",
)
"""


class TestFaultPointRegistry:
    def test_fires_on_unregistered_point(self, harness):
        harness.write("src/repro/service/faults.py", _FAULTS)
        harness.write(
            "src/repro/storage/sample.py",
            """
            def load(injector):
                injector.fire("lable-fetch")
            """,
        )
        findings = harness.findings("QHL005")
        assert _rules(findings) == ["QHL005"]
        assert "lable-fetch" in findings[0].message

    def test_quiet_on_registered_point(self, harness):
        harness.write("src/repro/service/faults.py", _FAULTS)
        harness.write(
            "src/repro/storage/sample.py",
            """
            def load(injector):
                injector.fire("index-load")
                _fire_fault("save-index", stage="write")
            """,
        )
        assert harness.findings("QHL005") == []

    def test_helper_call_checked(self, harness):
        harness.write("src/repro/service/faults.py", _FAULTS)
        harness.write(
            "src/repro/storage/sample.py",
            """
            def save():
                _fire_fault("save-idnex")
            """,
        )
        assert _rules(harness.findings("QHL005")) == ["QHL005"]


# ----------------------------------------------------------------------
# QHL006 float-equality


class TestFloatEquality:
    def test_fires_on_named_weight_cost_equality(self, harness):
        harness.write(
            "src/repro/skyline/sample.py",
            """
            def same(last_cost, c):
                return c == last_cost
            """,
        )
        findings = harness.findings("QHL006")
        assert _rules(findings) == ["QHL006"]
        assert "repro.skyline.compare" in findings[0].message

    def test_fires_on_pair_projection(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            def member(entry, other):
                return (entry[0], entry[1]) == (other[0], other[1])
            """,
        )
        assert _rules(harness.findings("QHL006")) == ["QHL006"]

    def test_quiet_on_sanctioned_helper(self, harness):
        harness.write(
            "src/repro/skyline/sample.py",
            """
            from repro.skyline.compare import costs_equal

            def same(last_cost, c):
                return costs_equal(c, last_cost)
            """,
        )
        assert harness.findings("QHL006") == []

    def test_ordering_comparisons_stay_legal(self, harness):
        harness.write(
            "src/repro/skyline/sample.py",
            """
            def dominated(weight, best_weight):
                return weight >= best_weight
            """,
        )
        assert harness.findings("QHL006") == []

    def test_sanctioned_module_exempt(self, harness):
        harness.write(
            "src/repro/skyline/compare.py",
            """
            def costs_equal(a, b):
                return a == b

            def pairs_equal(a_cost, b_cost):
                return a_cost == b_cost
            """,
        )
        assert harness.findings("QHL006") == []

    def test_other_packages_exempt(self, harness):
        harness.write(
            "src/repro/service/sample.py",
            """
            def same(cost, budget_cost):
                return cost == budget_cost
            """,
        )
        assert harness.findings("QHL006") == []


# ----------------------------------------------------------------------
# Inline suppression pragma


class TestInlineSuppression:
    def test_pragma_moves_finding_to_suppressed(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            import random

            rng = random.Random()  # lint: allow=QHL003 jitter is intentional
            """,
        )
        result = harness.run("QHL003")
        assert result.findings == []
        assert _rules(result.inline_suppressed) == ["QHL003"]

    def test_pragma_is_rule_specific(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            import random

            rng = random.Random()  # lint: allow=QHL001 wrong rule
            """,
        )
        result = harness.run("QHL003")
        assert _rules(result.findings) == ["QHL003"]

    def test_pragma_in_string_is_not_a_pragma(self, harness):
        harness.write(
            "src/repro/core/sample.py",
            """
            import random

            NOTE = "# lint: allow=QHL003"
            rng = random.Random()
            """,
        )
        result = harness.run("QHL003")
        assert _rules(result.findings) == ["QHL003"]

    def test_multi_rule_pragma(self, harness):
        harness.write(
            "src/repro/skyline/sample.py",
            """
            import time

            def stamp(cost, last_cost):
                return time.time() if cost == last_cost else 0  # lint: allow=QHL003,QHL006 fixture
            """,
        )
        result = harness.run("QHL003", "QHL006")
        assert result.findings == []
        assert sorted(_rules(result.inline_suppressed)) == [
            "QHL003",
            "QHL006",
        ]
