"""Unit tests for the exporters: JSON-lines round-trip, Prometheus
text exposition, and the human-readable renderings."""

import json

import pytest

from repro.observability.export import (
    PERCENTILES,
    metric_to_dict,
    parse_jsonl,
    render_table,
    render_trace,
    snapshot,
    span_to_dict,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.observability.metrics import Histogram, MetricsRegistry
from repro.observability.tracing import SpanTracer


@pytest.fixture
def populated_registry():
    registry = MetricsRegistry()
    registry.counter("queries_total", {"engine": "QHL"}).inc(3)
    registry.gauge("treewidth").set(7)
    h = registry.histogram(
        "query_seconds", {"engine": "QHL"}, buckets=(0.001, 0.01, 0.1)
    )
    for value in (0.0005, 0.002, 0.003, 0.05, 0.5):
        h.observe(value)
    return registry


class TestJsonLines:
    def test_round_trip(self, populated_registry):
        text = to_jsonl(populated_registry)
        records = parse_jsonl(text)
        assert len(records) == 3
        by_name = {r["name"]: r for r in records}
        assert by_name["queries_total"]["value"] == 3.0
        assert by_name["queries_total"]["labels"] == {"engine": "QHL"}
        assert by_name["treewidth"]["value"] == 7.0
        hist = by_name["query_seconds"]
        assert hist["count"] == 5
        assert hist["min"] == 0.0005
        assert hist["max"] == 0.5
        assert hist["buckets"][-1] == {"le": "+Inf", "count": 1}
        assert set(hist["percentiles"]) == {f"p{q}" for q in PERCENTILES}

    def test_every_line_is_valid_json(self, populated_registry):
        for line in to_jsonl(populated_registry).splitlines():
            json.loads(line)

    def test_write_jsonl_returns_count(self, populated_registry, tmp_path):
        path = tmp_path / "metrics.jsonl"
        count = write_jsonl(populated_registry, path)
        assert count == 3
        assert parse_jsonl(path.read_text()) == snapshot(populated_registry)

    def test_parse_accepts_iterable_of_lines(self, populated_registry):
        lines = to_jsonl(populated_registry).splitlines()
        assert parse_jsonl(lines) == parse_jsonl("\n".join(lines))

    def test_empty_histogram_has_null_min_max(self):
        record = metric_to_dict(Histogram("h"))
        assert record["min"] is None
        assert record["max"] is None
        assert record["count"] == 0


class TestPrometheus:
    def test_type_and_help_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("q_total", {"e": "a"}, help="queries").inc()
        registry.counter("q_total", {"e": "b"}).inc()
        text = to_prometheus(registry)
        assert text.count("# TYPE q_total counter") == 1
        assert text.count("# HELP q_total queries") == 1
        assert 'q_total{e="a"} 1' in text
        assert 'q_total{e="b"} 1' in text

    def test_histogram_buckets_are_cumulative(self, populated_registry):
        text = to_prometheus(populated_registry)
        assert 'query_seconds_bucket{engine="QHL",le="0.001"} 1' in text
        assert 'query_seconds_bucket{engine="QHL",le="0.01"} 3' in text
        assert 'query_seconds_bucket{engine="QHL",le="0.1"} 4' in text
        # The +Inf bucket always equals the total count.
        assert 'query_seconds_bucket{engine="QHL",le="+Inf"} 5' in text
        assert 'query_seconds_count{engine="QHL"} 5' in text
        assert 'query_seconds_sum{engine="QHL"}' in text

    def test_unlabelled_metric_has_no_braces(self):
        registry = MetricsRegistry()
        registry.gauge("width").set(4)
        assert "width 4" in to_prometheus(registry)

    def test_empty_registry_exports_empty_string(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestRenderings:
    def test_table_lists_every_metric(self, populated_registry):
        table = render_table(populated_registry)
        assert 'queries_total{engine="QHL"}' in table
        assert "treewidth" in table
        assert "p50=" in table and "p99=" in table

    def test_empty_table_placeholder(self):
        assert render_table(MetricsRegistry()) == "(no metrics recorded)"

    def test_span_to_dict_is_json_serialisable(self):
        tracer = SpanTracer()
        with tracer.span("root") as root:
            root.set("k", 2)
            with tracer.span("child"):
                pass
        data = span_to_dict(tracer.last())
        json.dumps(data)
        assert data["name"] == "root"
        assert data["counters"] == {"k": 2.0}
        assert data["children"][0]["name"] == "child"

    def test_render_trace_shows_nesting_and_counters(self):
        tracer = SpanTracer()
        with tracer.span("qhl.query") as root:
            root.set("hoplinks", 3)
            with tracer.span("lca"):
                pass
            with tracer.span("concatenation"):
                pass
        text = render_trace(tracer.last())
        lines = text.splitlines()
        assert lines[0].startswith("qhl.query")
        assert "hoplinks=3" in lines[0]
        assert any("├─ lca" in line for line in lines)
        assert any("└─ concatenation" in line for line in lines)


class TestRoundTripAndMerge:
    """JSON-lines -> registry -> Prometheus parity, and merging —
    the wire format worker spools use to ship metric deltas."""

    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", {"engine": "QHL"}).inc(4)
        registry.gauge("entries").set(12)
        h = registry.histogram("lat_seconds", buckets=(0.01, 0.1))
        for value in (0.005, 0.05, 0.5):
            h.observe(value)
        return registry

    def test_jsonl_to_registry_prometheus_parity(self):
        from repro.observability.export import registry_from_records

        original = self._registry()
        records = parse_jsonl(to_jsonl(original))
        rebuilt = registry_from_records(records)
        assert to_prometheus(rebuilt) == to_prometheus(original)
        assert snapshot(rebuilt) == snapshot(original)

    def test_merge_into_empty_registry_equals_source(self):
        from repro.observability.export import merge_records

        original = self._registry()
        target = MetricsRegistry()
        merged = merge_records(target, snapshot(original))
        assert merged == 3
        assert to_prometheus(target) == to_prometheus(original)

    def test_merge_accumulates_counters_and_histograms(self):
        from repro.observability.export import merge_records

        target = self._registry()
        merge_records(target, snapshot(self._registry()))
        assert target.counter("hits_total", {"engine": "QHL"}).value == 8
        assert target.gauge("entries").value == 12  # last writer wins
        h = target.histogram("lat_seconds", buckets=(0.01, 0.1))
        assert h.count == 6
        assert h.min == 0.005
        assert h.max == 0.5

    def test_merge_rejects_mismatched_bucket_bounds(self):
        from repro.observability.export import merge_records

        source = MetricsRegistry()
        source.histogram("lat_seconds", buckets=(0.25,)).observe(0.1)
        target = self._registry()
        with pytest.raises(ValueError):
            merge_records(target, snapshot(source))

    def test_merge_into_disabled_registry_is_a_no_op(self):
        from repro.observability.export import merge_records
        from repro.observability.metrics import NULL_REGISTRY

        assert merge_records(NULL_REGISTRY, snapshot(self._registry())) == 0

    def test_span_from_dict_inverts_span_to_dict(self):
        from repro.observability.export import span_from_dict

        tracer = SpanTracer()
        with tracer.span("root") as root:
            root.set("k", 2)
            with tracer.span("child") as child:
                child.add("n", 3)
        data = span_to_dict(tracer.last())
        rebuilt = span_from_dict(data)
        assert span_to_dict(rebuilt) == data
