"""Flight recorder: ring semantics, slow/fail log, dump/load, nulls."""

from __future__ import annotations

import pytest

from repro.observability.flight import (
    NULL_FLIGHT_RECORDER,
    FlightRecord,
    FlightRecorder,
    get_flight_recorder,
    load_flight,
    set_flight_recorder,
    use_flight_recorder,
)
from repro.observability.metrics import MetricsRegistry, use_registry
from repro.types import QueryStats


def record_one(recorder, outcome="ok", seconds=0.001, **kwargs):
    defaults = dict(
        engine="qhl", source=1, target=2, budget=10.0,
        outcome=outcome, seconds=seconds,
    )
    defaults.update(kwargs)
    return recorder.record(**defaults)


class TestFlightRecord:
    def test_failed_classification(self):
        ok = FlightRecord(1, "qhl", 0, 1, 5.0, "ok", 0.01)
        infeasible = FlightRecord(2, "qhl", 0, 1, 5.0, "infeasible", 0.01)
        error = FlightRecord(3, "qhl", 0, 1, 5.0, "QueryError", 0.01)
        assert not ok.failed
        assert not infeasible.failed
        assert error.failed

    def test_dict_round_trip_ignores_unknown_keys(self):
        record = FlightRecord(
            1, "qhl", 0, 1, 5.0, "ok", 0.01, trace_id="t-1",
            cache_hit=True, hoplinks=4,
        )
        data = record.to_dict()
        data["someday_a_new_field"] = "ignored"
        assert FlightRecord.from_dict(data) == record


class TestFlightRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_seq_increments_and_total_counts(self):
        recorder = FlightRecorder(capacity=4)
        first = record_one(recorder)
        second = record_one(recorder)
        assert (first.seq, second.seq) == (1, 2)
        assert recorder.total == 2
        assert recorder.last() == second

    def test_ring_evicts_oldest(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            record_one(recorder, source=i)
        records = recorder.records()
        assert [r.source for r in records] == [2, 3, 4]
        assert recorder.dropped == 2
        assert recorder.total == 5

    def test_op_counters_copied_from_stats(self):
        recorder = FlightRecorder()
        stats = QueryStats(
            hoplinks=7, concatenations=9, label_lookups=11,
        )
        entry = record_one(recorder, stats=stats)
        assert (entry.hoplinks, entry.concatenations, entry.label_lookups) \
            == (7, 9, 11)

    def test_slow_threshold_classifies_and_side_logs(self):
        recorder = FlightRecorder(slow_ms=1.0)
        fast = record_one(recorder, seconds=0.0001)
        slow = record_one(recorder, seconds=0.005)
        assert not fast.slow
        assert slow.slow
        assert recorder.slow_records() == [slow]

    def test_failures_always_land_in_side_log(self):
        recorder = FlightRecorder()  # no slow threshold
        record_one(recorder, outcome="ok")
        failed = record_one(
            recorder, outcome="DeadlineExceededError", error="too slow"
        )
        assert recorder.slow_records() == [failed]

    def test_tail_and_clear(self):
        recorder = FlightRecorder()
        for i in range(5):
            record_one(recorder, source=i)
        assert [r.source for r in recorder.tail(2)] == [3, 4]
        assert recorder.tail(0) == []
        recorder.clear()
        assert recorder.records() == []
        assert recorder.last() is None

    def test_dump_and_load_round_trip(self, tmp_path):
        recorder = FlightRecorder(slow_ms=0.5)
        record_one(recorder, trace_id="t-9", cache_hit=False)
        record_one(recorder, outcome="QueryError", error="bad vertex")
        path = tmp_path / "flight.jsonl"
        assert recorder.dump(path) == 2
        loaded = load_flight(path)
        assert loaded == recorder.records()

    def test_metrics_emitted_when_registry_live(self):
        recorder = FlightRecorder(slow_ms=1.0)
        registry = MetricsRegistry()
        with use_registry(registry):
            record_one(recorder, seconds=0.005)
            record_one(recorder, outcome="QueryError", seconds=0.0001)
            recorder.dump("/dev/null", reason="manual")
        assert registry.counter(
            "service_flight_records_total", {"outcome": "ok"}
        ).value == 1
        assert registry.counter(
            "service_flight_records_total", {"outcome": "QueryError"}
        ).value == 1
        assert registry.counter("service_flight_slow_total").value == 1
        assert registry.counter(
            "service_flight_dumps_total", {"reason": "manual"}
        ).value == 1


class TestNullRecorder:
    def test_default_is_inert(self):
        assert get_flight_recorder() is NULL_FLIGHT_RECORDER
        assert not get_flight_recorder().enabled

    def test_null_methods_are_no_ops(self, tmp_path):
        null = NULL_FLIGHT_RECORDER
        assert null.record(engine="x") is None
        assert null.records() == []
        assert null.slow_records() == []
        assert null.tail() == []
        assert null.last() is None
        assert null.dump(tmp_path / "x.jsonl") == 0
        null.clear()

    def test_use_flight_recorder_scopes_and_restores(self):
        recorder = FlightRecorder()
        with use_flight_recorder(recorder) as active:
            assert active is recorder
            assert get_flight_recorder() is recorder
            record_one(recorder)
        assert get_flight_recorder() is NULL_FLIGHT_RECORDER

    def test_set_flight_recorder_returns_previous(self):
        recorder = FlightRecorder()
        previous = set_flight_recorder(recorder)
        try:
            assert previous is NULL_FLIGHT_RECORDER
            assert get_flight_recorder() is recorder
        finally:
            set_flight_recorder(previous)
