"""Integration: the observability hooks wired through the engines.

These tests exercise real queries and index builds against the small
session-scoped fixtures and check that the captured spans and metrics
agree with the engines' own ``QueryStats``.
"""

import pytest

from repro.core import QHLIndex
from repro.core.explain import explain_trace
from repro.observability.export import parse_jsonl, to_jsonl
from repro.observability.metrics import MetricsRegistry, use_registry
from repro.observability.tracing import SpanTracer, use_tracer, walk

#: The QHL query pipeline phases of paper Algorithm 3 (separator case).
QHL_PHASES = ("lca", "separator-init", "pruning", "concatenation")


def _separator_query(index):
    """A query pair whose answer goes through the separator search."""
    engine = index.qhl_engine()
    for source, target in ((0, 63), (2, 61), (5, 58), (9, 54)):
        tracer = SpanTracer()
        with use_tracer(tracer):
            result = engine.query(source, target, budget=10_000)
        names = {s.name for s in walk(tracer.last())}
        if result.feasible and "separator-init" in names:
            return engine, source, target
    raise AssertionError("no separator-case pair found on the grid fixture")


class TestQueryTrace:
    def test_all_four_qhl_phases_recorded(self, small_grid_index):
        engine, source, target = _separator_query(small_grid_index)
        tracer = SpanTracer()
        with use_tracer(tracer):
            engine.query(source, target, budget=10_000)
        root = tracer.last()
        assert root.name == "qhl.query"
        child_names = [child.name for child in root.children]
        for phase in QHL_PHASES:
            assert phase in child_names

    def test_root_counters_match_query_stats(self, small_grid_index):
        engine, source, target = _separator_query(small_grid_index)
        tracer = SpanTracer()
        with use_tracer(tracer):
            result = engine.query(source, target, budget=10_000)
        counters = tracer.last().counters
        stats = result.stats
        assert counters["hoplinks"] == stats.hoplinks
        assert counters["concatenations"] == stats.concatenations
        assert counters["label_lookups"] == stats.label_lookups
        assert counters["candidates"] == stats.candidates

    def test_tracing_does_not_change_the_answer(self, small_grid_index):
        engine = small_grid_index.qhl_engine()
        plain = engine.query(3, 60, budget=400)
        with use_tracer(SpanTracer()):
            traced = engine.query(3, 60, budget=400)
        assert plain.pair() == traced.pair()
        assert plain.stats.hoplinks == traced.stats.hoplinks

    def test_csp2hop_trace(self, small_grid_index):
        engine = small_grid_index.csp2hop_engine()
        tracer = SpanTracer()
        with use_tracer(tracer):
            result = engine.query(0, 63, budget=10_000)
        root = tracer.last()
        assert root.name == "csp2hop.query"
        assert result.feasible
        names = [child.name for child in root.children]
        assert "lca" in names and "concatenation" in names

    def test_explain_trace_renders_phases_and_legend(self, small_grid_index):
        engine, source, target = _separator_query(small_grid_index)
        tracer = SpanTracer()
        with use_tracer(tracer):
            engine.query(source, target, budget=10_000)
        text = explain_trace(tracer.last())
        for phase in QHL_PHASES:
            assert phase in text
        # Legend annotates the phases with paper sections.
        assert "Algorithm 3" in text
        assert "§3.2" in text


class TestQueryMetrics:
    def test_registry_collects_query_and_phase_histograms(
        self, small_grid_index
    ):
        engine = small_grid_index.qhl_engine()
        registry = MetricsRegistry()
        with use_registry(registry):
            for pair in ((0, 63), (1, 62), (7, 56)):
                engine.query(*pair, budget=10_000)
        latency = registry.get("qhl_query_seconds", {"engine": engine.name})
        assert latency.count == 3
        assert (
            registry.get("qhl_queries_total", {"engine": engine.name}).value
            == 3
        )
        phases = [
            m for m in registry.metrics() if m.name == "qhl_phase_seconds"
        ]
        assert {m.labels["phase"] for m in phases} >= {"lca"}
        records = parse_jsonl(to_jsonl(registry))
        hist = next(r for r in records if r["name"] == "qhl_query_seconds")
        assert {"p50", "p95", "p99"} <= set(hist["percentiles"])

    def test_counter_totals_match_stats_sums(self, small_grid_index):
        engine = small_grid_index.qhl_engine()
        registry = MetricsRegistry()
        expected = {"hoplinks": 0, "concatenations": 0, "label_lookups": 0}
        with use_registry(registry):
            for pair in ((0, 63), (4, 59)):
                stats = engine.query(*pair, budget=10_000).stats
                expected["hoplinks"] += stats.hoplinks
                expected["concatenations"] += stats.concatenations
                expected["label_lookups"] += stats.label_lookups
        labels = {"engine": engine.name}
        assert (
            registry.get("qhl_hoplinks_total", labels).value
            == expected["hoplinks"]
        )
        assert (
            registry.get("qhl_concatenations_total", labels).value
            == expected["concatenations"]
        )
        assert (
            registry.get("qhl_label_lookups_total", labels).value
            == expected["label_lookups"]
        )


class TestBuildObservability:
    @pytest.fixture(scope="class")
    def traced_build(self, random30):
        tracer = SpanTracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            index = QHLIndex.build(random30, num_index_queries=50, seed=11)
        return index, tracer, registry

    def test_build_span_tree(self, traced_build):
        _, tracer, _ = traced_build
        root = tracer.last()
        assert root.name == "qhl.build"
        child_names = [child.name for child in root.children]
        for phase in (
            "tree-decomposition",
            "label-construction",
            "lca-index",
            "pruning-index",
        ):
            assert phase in child_names
        assert root.counters["vertices"] == 30

    def test_build_metrics_match_index_stats(self, traced_build):
        index, _, registry = traced_build
        stats = index.stats()
        assert (
            registry.get("qhl_index_treewidth").value == stats.treewidth
        )
        assert (
            registry.get("qhl_index_label_entries").value
            == stats.label_entries
        )
        assert (
            registry.get("qhl_index_pruning_conditions").value
            == stats.pruning_conditions
        )

    def test_label_build_histogram_populated(self, traced_build):
        index, _, registry = traced_build
        per_vertex = registry.get("qhl_label_vertex_seconds")
        assert per_vertex is not None
        # Every vertex except the decomposition root gets labels.
        assert per_vertex.count == index.network.num_vertices - 1
