"""Unit tests for the metrics registry: bucket math, percentiles,
registry semantics, and the disabled (no-op) path."""

import pytest

from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x_total")
        assert c.value == 0.0
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("x_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5


class TestHistogramBuckets:
    def test_values_land_in_correct_buckets(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(value)
        # bisect_left: exact bound values land in that bound's bucket.
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(556.5)
        assert h.min == 0.5
        assert h.max == 500.0

    def test_overflow_bucket_catches_everything_above_last_bound(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(2.0)
        h.observe(3.0)
        assert h.counts == [0, 2]

    def test_bounds_sorted_and_deduplicated(self):
        h = Histogram("h", buckets=(5.0, 1.0, 5.0))
        assert h.bounds == (1.0, 5.0)

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_default_buckets_cover_microseconds_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 1e-6
        assert DEFAULT_LATENCY_BUCKETS[-1] == 10.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )


class TestHistogramPercentiles:
    def test_empty_histogram_reports_zero(self):
        h = Histogram("h")
        assert h.percentile(50) == 0.0
        assert h.p99 == 0.0
        assert h.mean == 0.0

    def test_single_sample_reports_that_sample(self):
        h = Histogram("h")
        h.observe(0.003)
        for q in (0, 50, 90, 95, 99, 100):
            assert h.percentile(q) == pytest.approx(0.003)

    def test_percentiles_are_monotone(self):
        h = Histogram("h")
        for i in range(1, 101):
            h.observe(i / 1000)  # 1ms .. 100ms
        values = [h.percentile(q) for q in (10, 50, 90, 95, 99)]
        assert values == sorted(values)

    def test_median_of_uniform_samples_is_close(self):
        h = Histogram("h", buckets=tuple(i / 10 for i in range(1, 11)))
        for i in range(1, 101):
            h.observe(i / 100)  # 0.01 .. 1.00 uniformly
        assert h.percentile(50) == pytest.approx(0.5, abs=0.06)
        assert h.percentile(99) == pytest.approx(0.99, abs=0.06)

    def test_estimates_clamped_to_observed_range(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.4)
        h.observe(0.6)
        assert h.percentile(99) <= 0.6
        assert h.percentile(1) >= 0.4

    def test_out_of_range_quantile_rejected(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.percentile(101)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        a = registry.counter("a", {"engine": "QHL"})
        b = registry.counter("a", {"engine": "CSP-2Hop"})
        assert a is not b
        a.inc()
        assert b.value == 0.0

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_attach_adopts_external_metric(self):
        registry = MetricsRegistry()
        h = Histogram("external", labels={"k": "v"})
        registry.attach(h)
        assert registry.get("external", {"k": "v"}) is h
        assert h in registry.metrics()

    def test_metrics_in_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.gauge("a")
        assert [m.name for m in registry.metrics()] == ["z", "a"]


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert NULL_REGISTRY.enabled is False
        metric = NULL_REGISTRY.counter("anything")
        assert metric is NULL_METRIC
        metric.inc()
        metric.observe(1.0)
        metric.set(5)
        assert metric.value == 0.0
        assert metric.percentile(99) == 0.0
        assert NULL_REGISTRY.metrics() == []

    def test_default_registry_is_the_null_one(self):
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_restores_previous(self):
        live = MetricsRegistry()
        with use_registry(live):
            assert get_registry() is live
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_returns_previous(self):
        live = MetricsRegistry()
        previous = set_registry(live)
        try:
            assert previous is NULL_REGISTRY
            assert get_registry() is live
        finally:
            set_registry(previous)


class TestNoOpOverheadPath:
    def test_query_with_defaults_records_nothing(self, small_grid_index):
        """With the null registry/tracer active, queries leave no trace."""
        engine = small_grid_index.qhl_engine()
        result = engine.query(0, 63, budget=300)
        assert result.stats.seconds > 0
        assert get_registry().metrics() == []

    def test_query_stats_identical_with_and_without_registry(
        self, small_grid_index
    ):
        engine = small_grid_index.qhl_engine()
        plain = engine.query(1, 62, budget=250)
        with use_registry(MetricsRegistry()):
            observed = engine.query(1, 62, budget=250)
        assert plain.pair() == observed.pair()
        assert plain.stats.hoplinks == observed.stats.hoplinks
        assert plain.stats.concatenations == observed.stats.concatenations
        assert plain.stats.label_lookups == observed.stats.label_lookups
        assert plain.stats.candidates == observed.stats.candidates


class TestHistogramPercentileEdges:
    """Quantile edge cases: interpolation must stay inside the
    observed range, and degenerate histograms must be exact."""

    def test_single_sample_is_exact_for_every_quantile(self):
        h = Histogram("h")
        h.observe(0.00123)
        for q in (1, 10, 50, 90, 99, 100):
            assert h.percentile(q) == 0.00123

    def test_identical_samples_collapse_to_that_value(self):
        h = Histogram("h")
        for _ in range(50):
            h.observe(0.02)
        assert h.percentile(1) == 0.02
        assert h.percentile(50) == 0.02
        assert h.percentile(99) == 0.02

    def test_two_samples_stay_bracketed(self):
        h = Histogram("h")
        h.observe(0.001)
        h.observe(0.1)
        for q in (1, 50, 99):
            assert 0.001 <= h.percentile(q) <= 0.1

    def test_overflow_bucket_sample_is_exact(self):
        # A single observation beyond the last bound lives in the
        # +Inf bucket, whose upper edge must shrink to the max.
        h = Histogram("h", buckets=(0.1,))
        h.observe(5.0)
        assert h.percentile(50) == 5.0
        assert h.percentile(99) == 5.0

    def test_underflow_bucket_sample_is_exact(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(1e-9)
        assert h.percentile(50) == 1e-9
        assert h.percentile(99) == 1e-9

    def test_tiny_n_p99_never_exceeds_max(self):
        h = Histogram("h")
        for value in (0.004, 0.005, 0.006):
            h.observe(value)
        assert h.percentile(99) <= 0.006
        assert h.percentile(1) >= 0.004
