"""Cross-process trace propagation: spools, harvesting, stitching."""

from __future__ import annotations

import json
import os
import tempfile
import time

import pytest

from repro.observability.metrics import MetricsRegistry, use_registry
from repro.observability.propagation import (
    TraceContext,
    WorkerSpool,
    new_trace_id,
    reap_stale_spools,
    stitch,
)
from repro.observability.tracing import Span, SpanTracer, use_tracer


class TestTraceIds:
    def test_unique_and_formatted(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        pid_part, _, seq_part = next(iter(ids)).partition("-")
        assert int(pid_part, 16) == os.getpid()
        assert seq_part

    def test_context_new_mints_an_id(self):
        context = TraceContext.new("batch.fan-out")
        assert context.trace_id
        assert context.parent_span == "batch.fan-out"


@pytest.fixture
def spool(tmp_path):
    spool = WorkerSpool.create(
        TraceContext.new("fan-out"), directory=str(tmp_path / "spool")
    )
    yield spool
    spool.cleanup()


class TestWorkerSpool:
    def test_observe_writes_start_marker_and_chunk(self, spool):
        with spool.observe("worker-chunk") as root:
            root.set("queries", 3)
        harvest = spool.collect()
        assert harvest.started == {os.getpid()}
        assert len(harvest.chunks) == 1
        chunk = harvest.chunks[0]
        assert chunk["trace_id"] == spool.trace_id
        assert chunk["span"]["name"] == "worker-chunk"
        assert chunk["span"]["counters"]["queries"] == 3

    def test_observe_installs_live_tracer_and_registry(self, spool):
        from repro.observability.metrics import get_registry
        from repro.observability.tracing import get_tracer

        with spool.observe("chunk"):
            assert get_tracer().enabled
            assert get_registry().enabled
            get_registry().counter("qhl_cache_hits_total").inc(5)
        assert not get_tracer().enabled
        chunk = spool.collect().chunks[0]
        names = {m["name"] for m in chunk["metrics"]}
        assert "qhl_cache_hits_total" in names

    def test_chunk_flushed_even_when_body_raises(self, spool):
        with pytest.raises(RuntimeError):
            with spool.observe("chunk"):
                raise RuntimeError("boom")
        assert len(spool.collect().chunks) == 1

    def test_started_without_end_is_truncated(self, spool):
        with spool.observe("chunk"):
            pass
        harvest = spool.collect()
        # This process has not exited, so no end marker yet.
        assert harvest.truncated == {os.getpid()}
        spool._farewell(os.getpid())
        assert spool.collect().truncated == set()

    def test_collect_skips_garbage_files(self, spool):
        with spool.observe("chunk"):
            pass
        with open(os.path.join(spool.directory, "chunk-zzz.json"), "w") as f:
            f.write("{not json")
        with open(os.path.join(spool.directory, "notes.txt"), "w") as f:
            f.write("ignored")
        harvest = spool.collect()
        assert len(harvest.chunks) == 1

    def test_chunks_sorted_by_pid_then_seq(self, spool):
        for name, pid, seq in (
            ("chunk-00000009-000002.json", 9, 2),
            ("chunk-00000009-000001.json", 9, 1),
            ("chunk-00000002-000005.json", 2, 5),
        ):
            with open(os.path.join(spool.directory, name), "w") as f:
                json.dump({"pid": pid, "seq": seq}, f)
        harvest = spool.collect()
        assert [(c["pid"], c["seq"]) for c in harvest.chunks] == [
            (2, 5), (9, 1), (9, 2),
        ]

    def test_cleanup_removes_directory(self, tmp_path):
        spool = WorkerSpool.create(
            TraceContext.new(), directory=str(tmp_path / "s")
        )
        with spool.observe("chunk"):
            pass
        spool.cleanup()
        assert not os.path.exists(spool.directory)
        spool.cleanup()  # idempotent


class TestStitch:
    def _spool_with_chunk(self, tmp_path, clean_exit=True):
        spool = WorkerSpool.create(
            TraceContext.new("fan-out"), directory=str(tmp_path / "spool")
        )
        with spool.observe("worker-chunk") as root:
            from repro.observability.metrics import get_registry

            get_registry().counter("qhl_cache_misses_total").inc(4)
            root.set("queries", 2)
        if clean_exit:
            spool._farewell(os.getpid())
        return spool

    def test_attaches_worker_spans_under_parent(self, tmp_path):
        spool = self._spool_with_chunk(tmp_path)
        tracer = SpanTracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            with tracer.span("fan-out") as parent:
                result = stitch(spool, parent=parent)
        assert result.trace_id == spool.trace_id
        assert result.chunks == 1
        assert result.pids == {os.getpid()}
        assert result.truncated == set()
        children = [c.name for c in tracer.last().children]
        assert "worker-chunk" in children

    def test_merges_worker_metrics_into_parent_registry(self, tmp_path):
        spool = self._spool_with_chunk(tmp_path)
        registry = MetricsRegistry()
        with use_registry(registry):
            result = stitch(spool, parent=None)
        assert result.metrics_merged >= 1
        assert registry.counter("qhl_cache_misses_total").value == 4
        assert registry.counter("qhl_trace_stitched_total").value == 1
        assert registry.gauge("qhl_trace_workers").value == 1

    def test_dead_worker_gets_truncated_span(self, tmp_path):
        spool = self._spool_with_chunk(tmp_path, clean_exit=False)
        tracer = SpanTracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            with tracer.span("fan-out") as parent:
                result = stitch(spool, parent=parent)
        assert result.truncated == {os.getpid()}
        names = [c.name for c in tracer.last().children]
        assert "worker.truncated" in names
        assert registry.counter("qhl_trace_truncated_total").value == 1

    def test_idle_worker_gets_idle_span(self, tmp_path):
        spool = WorkerSpool.create(
            TraceContext.new(), directory=str(tmp_path / "spool")
        )
        spool._write("start-00000042.json", {"pid": 42})
        spool._write("end-00000042.json", {"pid": 42})
        parent = Span("fan-out")
        stitch_result = stitch(spool, parent=parent)
        assert stitch_result.chunks == 0
        assert [c.name for c in parent.children] == ["worker.idle"]
        assert parent.children[0].counters["pid"] == 42

    def test_inert_observability_is_a_cheap_no_op(self, tmp_path):
        spool = self._spool_with_chunk(tmp_path)
        result = stitch(spool)  # null tracer + null registry
        assert result.chunks == 1
        assert result.metrics_merged == 0


class TestStaleSpoolReaping:
    """Orphaned spool dirs from crashed parents must not leak forever."""

    def _make_dir(self, root, name, age_s):
        path = os.path.join(root, name)
        os.makedirs(path)
        with open(os.path.join(path, "chunk-00000001.json"), "w") as f:
            f.write("{}")
        stamp = time.time() - age_s
        for target in (path, os.path.join(path, "chunk-00000001.json")):
            os.utime(target, (stamp, stamp))
        return path

    def test_stale_dirs_are_reaped_fresh_kept(self, tmp_path):
        root = str(tmp_path)
        stale_spool = self._make_dir(root, "qhl-spool-dead", 7200.0)
        stale_sup = self._make_dir(root, "qhl-supervisor-dead", 7200.0)
        fresh = self._make_dir(root, "qhl-spool-live", 0.0)
        other = self._make_dir(root, "some-other-dir", 7200.0)
        reaped = reap_stale_spools(root=root)
        assert sorted(reaped) == sorted([stale_spool, stale_sup])
        assert not os.path.exists(stale_spool)
        assert not os.path.exists(stale_sup)
        assert os.path.exists(fresh)       # recent activity: kept
        assert os.path.exists(other)       # unknown prefix: untouched

    def test_age_is_judged_on_the_newest_entry(self, tmp_path):
        # An old dir whose *contents* are still being written is a live
        # long-running fan-out, not an orphan.
        root = str(tmp_path)
        path = self._make_dir(root, "qhl-spool-busy", 7200.0)
        recent = os.path.join(path, "chunk-00000002.json")
        with open(recent, "w") as f:
            f.write("{}")
        assert reap_stale_spools(root=root) == []
        assert os.path.exists(path)

    def test_spool_creation_sweeps_the_temp_root(
        self, tmp_path, monkeypatch
    ):
        # Seed a stale leaked dir, point the temp root at it, and
        # create a spool the normal way: the leak is gone afterwards.
        root = str(tmp_path)
        stale = self._make_dir(root, "qhl-spool-leak", 7200.0)
        monkeypatch.setattr(tempfile, "tempdir", root)
        spool = WorkerSpool.create(TraceContext.new("fan-out"))
        try:
            assert not os.path.exists(stale)
            assert spool.directory.startswith(root)
        finally:
            spool.cleanup()
