"""Unit tests for span tracing: nesting, ordering, counters, and the
no-op default."""

import pytest

from repro.observability.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    SpanTracer,
    get_tracer,
    set_tracer,
    use_tracer,
    walk,
)


class TestSpanNesting:
    def test_children_attach_to_open_span(self):
        tracer = SpanTracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        root = tracer.last()
        assert root.name == "root"
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a1"]

    def test_walk_is_preorder(self):
        tracer = SpanTracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        assert [s.name for s in walk(tracer.last())] == [
            "root", "a", "a1", "b",
        ]

    def test_sibling_roots(self):
        tracer = SpanTracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]
        assert tracer.last().name == "second"

    def test_durations_nest_consistently(self):
        tracer = SpanTracer()
        with tracer.span("root"):
            with tracer.span("child"):
                sum(range(1000))
        root = tracer.last()
        child = root.children[0]
        assert child.duration > 0
        assert root.duration >= child.duration

    def test_exception_still_closes_and_pops(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("child"):
                    raise RuntimeError("boom")
        root = tracer.last()
        assert root.duration > 0
        assert root.children[0].duration > 0
        # The stack unwound: a new span becomes a fresh root.
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.roots] == ["root", "after"]

    def test_reset_clears_state(self):
        tracer = SpanTracer()
        with tracer.span("root"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.last() is None


class TestSpanCounters:
    def test_add_accumulates_and_set_overwrites(self):
        tracer = SpanTracer()
        with tracer.span("s") as span:
            span.add("n")
            span.add("n", 2)
            span.set("k", 7)
            span.set("k", 9)
        assert span.counters == {"n": 3.0, "k": 9.0}


class TestNullTracer:
    def test_disabled_and_shared_span(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("anything")
        assert span is NULL_SPAN
        with span as entered:
            entered.add("x")
            entered.set("y", 1)
        assert span.counters == {}
        assert span.duration == 0.0
        assert NULL_TRACER.last() is None

    def test_default_tracer_is_the_null_one(self):
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_previous(self):
        live = SpanTracer()
        with use_tracer(live):
            assert get_tracer() is live
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_returns_previous(self):
        live = SpanTracer()
        previous = set_tracer(live)
        try:
            assert previous is NULL_TRACER
        finally:
            set_tracer(previous)
