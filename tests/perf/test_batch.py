"""Batch execution API: ordering, failure tolerance, deadlines, workers."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.perf import execute_batch
from repro.perf.batch import _fork_context, sorted_batch_order
from repro.service import QueryService, ServiceConfig
from repro.types import CSPQuery


def answer(result):
    return (result.feasible, result.weight, result.cost)


QUERIES = [
    (7, 3, 13),
    (0, 5, 20),
    (3, 7, 18),   # same pair as the first, other orientation
    (2, 9, 25),
    (7, 3, 9),
    (0, 5, 6),
]


class TestSortedBatchOrder:
    def test_groups_normalised_pairs(self):
        order = sorted_batch_order(QUERIES)
        pairs = [tuple(sorted(QUERIES[i][:2])) for i in order]
        # Each pair appears in one contiguous run.
        seen = set()
        previous = None
        for pair in pairs:
            if pair != previous:
                assert pair not in seen, f"{pair} split across runs"
                seen.add(pair)
            previous = pair
        assert sorted(order) == list(range(len(QUERIES)))

    def test_budget_breaks_ties_then_position(self):
        queries = [(1, 2, 9.0), (2, 1, 3.0), (1, 2, 3.0)]
        assert sorted_batch_order(queries) == [1, 2, 0]

    def test_accepts_cspquery_objects(self):
        queries = [CSPQuery(5, 1, 7.0), CSPQuery(0, 2, 3.0)]
        assert sorted_batch_order(queries) == [1, 0]

    def test_empty(self):
        assert sorted_batch_order([]) == []


class TestExecuteBatchSequential:
    def test_results_in_input_order_match_single_queries(self, paper_index):
        engine = paper_index.qhl_engine()
        report = execute_batch(engine, QUERIES)
        assert report.answered == len(QUERIES)
        assert report.failed == 0 and report.skipped == 0
        for (s, t, c), result in zip(QUERIES, report.results):
            assert answer(result) == answer(engine.query(s, t, c))
            assert result.query == CSPQuery(s, t, c)

    def test_cached_engine_batch_matches_uncached(self, paper_index):
        cached = paper_index.cached_engine(cache_size=4)
        uncached = paper_index.qhl_engine()
        report = execute_batch(cached, QUERIES)
        for (s, t, c), result in zip(QUERIES, report.results):
            assert answer(result) == answer(uncached.query(s, t, c))
        # Three distinct normalised pairs — one miss each, the other
        # three queries answered from cache.
        assert cached.cache.misses == 3
        assert cached.cache.hits == 3

    def test_bad_query_becomes_failure_row(self, paper_index):
        engine = paper_index.qhl_engine()
        queries = [(7, 3, 13), (0, 999, 10), (2, 9, 25)]
        report = execute_batch(engine, queries)
        assert report.answered == 2
        assert [f.index for f in report.failures] == [1]
        failure = report.failures[0]
        assert failure.error == QueryError.__name__
        assert failure.query == CSPQuery(0, 999, 10)
        assert report.results[1] is None

    def test_expired_batch_deadline_skips_everything(self, paper_index):
        engine = paper_index.qhl_engine()
        report = execute_batch(engine, QUERIES, batch_deadline_ms=0)
        assert report.answered == 0
        assert report.skipped == len(QUERIES)

    def test_want_path_flows_through(self, paper_network, paper_index):
        engine = paper_index.qhl_engine()
        report = execute_batch(engine, [(7, 3, 13)], want_path=True)
        path = report.results[0].path
        assert path[0] == 7 and path[-1] == 3
        assert paper_network.path_metrics(path) == (
            report.results[0].weight, report.results[0].cost,
        )

    def test_query_many_facade(self, paper_index):
        report = paper_index.query_many(QUERIES, cache_size=8)
        direct = paper_index.qhl_engine()
        for (s, t, c), result in zip(QUERIES, report.results):
            assert answer(result) == answer(direct.query(s, t, c))

    def test_engine_query_many_preserves_input_order(self, paper_index):
        cached = paper_index.cached_engine(cache_size=8)
        uncached = paper_index.qhl_engine()
        results = cached.query_many(QUERIES)
        assert len(results) == len(QUERIES)
        for (s, t, c), result in zip(QUERIES, results):
            assert answer(result) == answer(uncached.query(s, t, c))


class TestExecuteBatchWorkers:
    def test_workers_reject_batch_deadline(self, paper_index):
        with pytest.raises(ValueError, match="batch_deadline_ms"):
            execute_batch(
                paper_index.qhl_engine(), QUERIES,
                workers=2, batch_deadline_ms=50,
            )

    @pytest.mark.skipif(
        _fork_context() is None, reason="fork start method unavailable"
    )
    def test_pool_results_match_sequential(self, paper_index):
        engine = paper_index.qhl_engine()
        sequential = execute_batch(engine, QUERIES)
        pooled = execute_batch(engine, QUERIES, workers=2)
        for lhs, rhs in zip(sequential.results, pooled.results):
            assert answer(lhs) == answer(rhs)

    @pytest.mark.skipif(
        _fork_context() is None, reason="fork start method unavailable"
    )
    def test_pool_failures_keep_indices(self, paper_index):
        queries = [(7, 3, 13), (0, 999, 10), (2, 9, 25), (5, 888, 1)]
        report = execute_batch(
            paper_index.qhl_engine(), queries, workers=2
        )
        assert [f.index for f in report.failures] == [1, 3]
        assert report.answered == 2


class TestServiceBatch:
    def test_query_batch_matches_single_queries(self, paper_index):
        service = QueryService(
            index=paper_index, config=ServiceConfig(cache_size=8)
        )
        assert service.tiers[0] == "QHL+cache"
        report = service.query_batch(QUERIES)
        for (s, t, c), result in zip(QUERIES, report.results):
            assert answer(result) == answer(service.query(s, t, c))
            assert result.engine == "QHL+cache"

    def test_query_batch_records_failures(self, paper_index):
        service = QueryService(index=paper_index)
        report = service.query_batch([(7, 3, 13), (0, 999, 10)])
        assert report.answered == 1
        assert [f.index for f in report.failures] == [1]

    def test_query_batch_batch_deadline_skips(self, paper_index):
        service = QueryService(index=paper_index)
        report = service.query_batch(QUERIES, batch_deadline_ms=0)
        assert report.skipped == len(QUERIES)
        assert report.answered == 0

    def test_cache_disabled_by_default(self, paper_index):
        service = QueryService(index=paper_index)
        assert service.tiers[0] == "QHL"


class TestHarnessBatchMode:
    def test_run_workload_batched_aggregates(self, paper_index):
        from repro.instrument.harness import run_workload

        queries = [CSPQuery(s, t, c) for s, t, c in QUERIES]
        engine = paper_index.cached_engine(cache_size=8)
        report = run_workload(engine, queries, "batch", batch=True)
        plain = run_workload(
            paper_index.qhl_engine(), queries, "plain"
        )
        assert report.num_queries == len(QUERIES)
        assert report.feasible == plain.feasible
        assert report.failed == 0
