"""Supervised batch execution must be invisible when nothing dies.

The fault-free contract: ``supervised=True`` returns exactly the same
answers as the sequential and bare-pool paths, carries the same trace
and failure-row semantics, and threads through ``run_workload`` /
``QHLIndex.build`` without changing any result.
"""

from __future__ import annotations

import pytest

from repro.instrument.harness import run_workload
from repro.observability.tracing import SpanTracer, use_tracer
from repro.perf.batch import _fork_context, execute_batch
from repro.supervise import SupervisionConfig
from repro.types import CSPQuery

pytestmark = pytest.mark.skipif(
    _fork_context() is None, reason="fork start method unavailable"
)

QUERIES = [
    (s, t, budget)
    for s, t in ((0, 5), (2, 9), (7, 3), (1, 11), (4, 8), (6, 10))
    for budget in (9.0, 14.0, 21.0, 30.0)
]

FAST = SupervisionConfig(
    heartbeat_ms=20.0, stall_after_ms=2000.0,
    backoff_base_s=0.005, backoff_max_s=0.05, drain_grace_s=1.0,
)


class TestFaultFreeIdentity:
    def test_supervised_matches_sequential(self, paper_index):
        engine = paper_index.qhl_engine()
        sequential = execute_batch(engine, QUERIES, workers=0)
        supervised = execute_batch(
            engine, QUERIES, workers=2,
            supervised=True, supervision=FAST,
        )
        assert supervised.failures == []
        assert [r.pair() for r in supervised.results] == [
            r.pair() for r in sequential.results
        ]

    def test_incidents_ride_on_the_report(self, paper_index):
        engine = paper_index.qhl_engine()
        report = execute_batch(
            engine, QUERIES[:8], workers=2,
            supervised=True, supervision=FAST,
        )
        kinds = [i.kind for i in report.incidents]
        assert kinds.count("spawn") == 2
        assert kinds.count("stop") == 2
        assert "death" not in kinds

    def test_trace_marks_the_run_supervised(self, paper_index):
        engine = paper_index.qhl_engine()
        tracer = SpanTracer()
        with use_tracer(tracer):
            report = execute_batch(
                engine, QUERIES, workers=2,
                supervised=True, supervision=FAST,
                trace_id="sup-0001",
            )
        assert report.trace_id == "sup-0001"
        root = tracer.last()
        assert root.name == "batch.fan-out"
        assert root.counters.get("supervised") == 1
        assert any(
            c.name == "batch.worker-chunk" for c in root.children
        )

    def test_query_failures_stay_failure_rows(self, paper_index):
        # A bad query raises inside the worker: under supervision that
        # is still a per-query failure row, not a worker death.
        engine = paper_index.qhl_engine()
        queries = list(QUERIES[:4]) + [(0, 10_000, 5.0)]
        report = execute_batch(
            engine, queries, workers=2,
            supervised=True, supervision=FAST,
        )
        assert len(report.failures) == 1
        assert report.failures[0].index == 4
        assert report.failures[0].error == "QueryError"
        assert all(r is not None for r in report.results[:4])
        assert "death" not in [i.kind for i in report.incidents]

    def test_run_workload_threads_supervision(self, paper_index):
        engine = paper_index.qhl_engine()
        queries = [CSPQuery(s, t, c) for s, t, c in QUERIES]
        plain = run_workload(engine, queries, "sup", batch=True)
        supervised = run_workload(
            engine, queries, "sup", batch=True, workers=2,
            supervised=True, supervision=FAST,
        )
        assert supervised.num_queries == plain.num_queries
        assert supervised.failed == 0
        assert supervised.feasible == plain.feasible
