"""Cross-process tracing through the batch executor.

The acceptance bar for the trace-propagation work: one ``query_many``
batch through the process pool yields ONE stitched trace whose worker
spans come from at least two distinct worker pids, with worker-side
cache metrics folded into the parent registry — and a worker SIGKILLed
mid-chunk costs only its own chunk while its span is marked truncated.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.observability.flight import FlightRecorder, use_flight_recorder
from repro.observability.metrics import MetricsRegistry, use_registry
from repro.observability.tracing import SpanTracer, use_tracer
from repro.perf.batch import _fork_context, execute_batch

pytestmark = pytest.mark.skipif(
    _fork_context() is None, reason="fork start method unavailable"
)

QUERIES = [
    (s, t, budget)
    for s, t in ((0, 5), (2, 9), (7, 3), (1, 11), (4, 8), (6, 10))
    for budget in (9.0, 14.0, 21.0, 30.0)
]


def span_pids(span) -> set[int]:
    """Every pid recorded anywhere in a span tree."""
    pids = set()
    if "pid" in span.counters:
        pids.add(int(span.counters["pid"]))
    for child in span.children:
        pids |= span_pids(child)
    return pids


class TestStitchedBatchTrace:
    def test_pool_batch_produces_one_stitched_trace(self, paper_index):
        engine = paper_index.cached_engine(cache_size=8)
        tracer = SpanTracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            report = execute_batch(engine, QUERIES, workers=2)

        assert report.trace_id is not None
        assert report.answered == len(QUERIES)
        root = tracer.last()
        assert root.name == "batch.fan-out"
        # Both spawned workers announce eagerly, so the stitched tree
        # shows >= 2 distinct pids (as worker-chunk or worker.idle
        # spans), none of them this process.
        worker_pids = span_pids(root) - {os.getpid()}
        assert len(worker_pids) >= 2
        chunk_spans = [
            c for c in root.children if c.name == "batch.worker-chunk"
        ]
        assert chunk_spans, "no worker chunk spans were stitched"
        # Worker-side cache metrics reached the parent registry.
        assert registry.counter("qhl_cache_misses_total").value > 0
        assert registry.counter("qhl_trace_stitched_total").value >= 1
        assert registry.gauge("qhl_trace_workers").value >= 2

    def test_sequential_batch_still_carries_a_trace_id(self, paper_index):
        engine = paper_index.qhl_engine()
        report = execute_batch(engine, QUERIES[:4], workers=0)
        assert report.trace_id is not None

    def test_caller_trace_id_is_preserved(self, paper_index):
        engine = paper_index.qhl_engine()
        report = execute_batch(
            engine, QUERIES[:4], trace_id="caller-0001"
        )
        assert report.trace_id == "caller-0001"

    def test_failure_rows_join_trace_and_flight(self, paper_index):
        engine = paper_index.qhl_engine()
        recorder = FlightRecorder()
        with use_flight_recorder(recorder):
            report = execute_batch(
                engine, [(0, 5, 9.0), (0, 999, 9.0)]
            )
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.trace_id == report.trace_id
        assert failure.flight_seq is not None
        entry = recorder.records()[failure.flight_seq - 1]
        assert entry.trace_id == report.trace_id
        assert entry.outcome == failure.error


class KillSwitchEngine:
    """Wraps a real engine; SIGKILLs its own process on one sentinel.

    The pre-kill sleep lets the sibling worker finish its chunk first,
    so the test deterministically observes the partial-batch outcome.
    """

    name = "killswitch"

    def __init__(self, inner, sentinel: tuple[int, int], delay: float):
        self.inner = inner
        self.sentinel = sentinel
        self.delay = delay

    def query(self, s, t, c, want_path=False, deadline=None):
        if (s, t) == self.sentinel:
            time.sleep(self.delay)
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.query(
            s, t, c, want_path=want_path, deadline=deadline
        )


class TestWorkerDeath:
    def test_sigkilled_worker_costs_only_its_chunk(self, paper_index):
        # The sentinel pair sorts last, so it lands in the second
        # chunk; the first chunk's worker finishes during the sleep.
        sentinel = (11, 12)
        queries = [(0, 5, 9.0), (1, 4, 9.0), (2, 9, 14.0)] + [
            (11, 12, 9.0)
        ]
        engine = KillSwitchEngine(
            paper_index.qhl_engine(), sentinel, delay=0.5
        )
        tracer = SpanTracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            report = execute_batch(engine, queries, workers=2)

        # The surviving chunk answered; the dead chunk became
        # WorkerCrashError rows joined to the batch trace.
        assert report.answered >= 1
        assert report.failures
        assert {f.error for f in report.failures} == {"WorkerCrashError"}
        assert all(
            f.trace_id == report.trace_id for f in report.failures
        )
        answered_indices = {
            i for i, r in enumerate(report.results) if r is not None
        }
        failed_indices = {f.index for f in report.failures}
        assert answered_indices.isdisjoint(failed_indices)
        assert answered_indices | failed_indices == set(
            range(len(queries))
        )

        # The trace is complete even though a worker is not: the dead
        # worker's span is synthesised as truncated.
        root = tracer.last()
        assert root.name == "batch.fan-out"
        truncated = [
            c for c in root.children if c.name == "worker.truncated"
        ]
        assert truncated
        assert registry.counter("qhl_trace_truncated_total").value >= 1
        # The killed pid is not this process.
        assert all(
            int(c.counters["pid"]) != os.getpid() for c in truncated
        )
