"""Unit tests for the skyline LRU cache mechanics and metrics."""

from __future__ import annotations

import pytest

from repro.observability.metrics import MetricsRegistry, use_registry
from repro.perf import SkylineCache, normalize_pair


def frontier(tag: int):
    """A distinguishable stand-in skyline set."""
    return [(tag, tag, None)]


class TestNormalizePair:
    def test_orders_endpoints(self):
        assert normalize_pair(5, 2) == (2, 5)
        assert normalize_pair(2, 5) == (2, 5)
        assert normalize_pair(3, 3) == (3, 3)


class TestLRUMechanics:
    def test_get_miss_then_hit(self):
        cache = SkylineCache(4)
        assert cache.get(1, 2) is None
        cache.put(1, 2, frontier(1))
        assert cache.get(1, 2) == frontier(1)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_both_orientations_share_one_slot(self):
        cache = SkylineCache(4)
        cache.put(7, 3, frontier(1))
        assert cache.get(3, 7) == frontier(1)
        assert len(cache) == 1

    def test_eviction_drops_least_recently_used(self):
        cache = SkylineCache(2)
        cache.put(0, 1, frontier(1))
        cache.put(0, 2, frontier(2))
        cache.get(0, 1)            # refresh (0, 1)
        cache.put(0, 3, frontier(3))  # evicts (0, 2)
        assert cache.get(0, 2) is None
        assert cache.get(0, 1) is not None
        assert cache.get(0, 3) is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_put_refreshes_existing_key(self):
        cache = SkylineCache(2)
        cache.put(0, 1, frontier(1))
        cache.put(0, 2, frontier(2))
        cache.put(1, 0, frontier(9))   # same pair as (0, 1), refreshed
        cache.put(0, 3, frontier(3))   # evicts (0, 2), not (0, 1)
        assert cache.get(0, 1) == frontier(9)
        assert cache.get(0, 2) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SkylineCache(0)

    def test_clear_keeps_counters(self):
        cache = SkylineCache(4)
        cache.put(0, 1, frontier(1))
        cache.get(0, 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_stats_snapshot(self):
        cache = SkylineCache(3)
        cache.put(0, 1, frontier(1))
        cache.get(0, 1)
        cache.get(0, 2)
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.capacity == 3
        assert stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_without_lookups(self):
        assert SkylineCache(2).stats().hit_rate == 0.0


class TestCacheMetrics:
    def test_counters_mirror_into_registry(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            cache = SkylineCache(1)
            cache.get(0, 1)                 # miss
            cache.put(0, 1, frontier(1))
            cache.get(0, 1)                 # hit
            cache.put(0, 2, frontier(2))    # evicts (0, 1)
        assert registry.counter("qhl_cache_misses_total").value == 1
        assert registry.counter("qhl_cache_hits_total").value == 1
        assert registry.counter("qhl_cache_evictions_total").value == 1
        assert registry.gauge("qhl_cache_entries").value == 1

    def test_no_registry_no_crash(self):
        cache = SkylineCache(1)
        cache.get(0, 1)
        cache.put(0, 1, frontier(1))
        cache.put(0, 2, frontier(2))
        assert cache.stats().evictions == 1
