"""Cache exactness invariants.

The skyline cache must be *invisible* in the answers: whatever sequence
of queries, hits, and evictions happened before, a cached engine's
``(feasible, weight, cost)`` must equal a cold engine's — and the
uncached QHL engine's — for every query.
"""

from __future__ import annotations

import itertools

import pytest

from repro.baselines import skyline_between
from repro.perf import CachedQHLEngine, SkylineCache


def answer(result):
    """The exactness-relevant projection of a QueryResult."""
    return (result.feasible, result.weight, result.cost)


def make_cached(index, capacity):
    return CachedQHLEngine(
        index.tree, index.labels, index.lca, cache=capacity
    )


@pytest.fixture(scope="module")
def paper_uncached(paper_index):
    return paper_index.qhl_engine()


class TestCachedEqualsCold:
    def test_eviction_sequence_never_changes_answers(
        self, paper_network, paper_index, paper_uncached
    ):
        """A tiny cache churns through evictions; answers stay exact."""
        warm = make_cached(paper_index, capacity=2)
        n = paper_network.num_vertices
        pairs = [(s, t) for s in range(n) for t in range(s + 1, n)]
        budgets = (5, 10, 15, 20, 25)
        # Interleave pairs and budgets so the same pair recurs after
        # unrelated pairs have evicted its frontier.
        sequence = [
            (s, t, c)
            for c in budgets
            for (s, t) in pairs[::3] + pairs[1::3] + pairs[::3]
        ]
        for s, t, c in sequence:
            got = warm.query(s, t, c)
            cold = make_cached(paper_index, capacity=2).query(s, t, c)
            assert answer(got) == answer(cold), (s, t, c)
            assert answer(got) == answer(paper_uncached.query(s, t, c)), (
                s, t, c,
            )
        assert warm.cache.evictions > 0, "sequence never exercised eviction"

    def test_hits_match_uncached_on_grid(
        self, small_grid, small_grid_index
    ):
        warm = make_cached(small_grid_index, capacity=64)
        uncached = small_grid_index.qhl_engine()
        n = small_grid.num_vertices
        queries = [
            (s, (s * 7 + 13) % n, budget)
            for s in range(0, n, 5)
            for budget in (50, 120, 250)
            if s != (s * 7 + 13) % n
        ]
        for _ in range(2):  # second pass runs entirely on cache hits
            for s, t, c in queries:
                assert answer(warm.query(s, t, c)) == answer(
                    uncached.query(s, t, c)
                ), (s, t, c)
        assert warm.cache.hits > 0


class TestConstraintSweep:
    def test_tighten_then_relax_single_frontier(
        self, paper_index, paper_uncached
    ):
        """Sweep C down then back up: one miss, every answer exact."""
        warm = make_cached(paper_index, capacity=4)
        s, t = 7, 3  # the paper's (v8, v4) pair
        budgets = list(range(30, -1, -1)) + list(range(0, 31))
        for c in budgets:
            assert answer(warm.query(s, t, c)) == answer(
                paper_uncached.query(s, t, c)
            ), c
        assert warm.cache.misses == 1
        assert warm.cache.hits == len(budgets) - 1

    def test_answers_monotone_in_budget(self, paper_index):
        """Relaxing C never worsens weight; tightening never improves."""
        warm = make_cached(paper_index, capacity=4)
        s, t = 7, 3
        results = [warm.query(s, t, c) for c in range(0, 31)]
        for lo, hi in itertools.pairwise(results):
            if lo.feasible:
                assert hi.feasible
                assert hi.weight <= lo.weight


class TestInfeasibleBudget:
    def test_below_minimum_cost_is_infeasible(
        self, paper_network, paper_index, paper_uncached
    ):
        warm = make_cached(paper_index, capacity=8)
        frontier = warm.frontier(7, 3)
        min_cost = min(entry[1] for entry in frontier)
        result = warm.query(7, 3, min_cost - 1)
        assert not result.feasible
        assert result.weight is None and result.cost is None
        assert answer(result) == answer(
            paper_uncached.query(7, 3, min_cost - 1)
        )
        # The infeasible probe still cached the frontier: the next
        # feasible budget answers as a hit.
        hits_before = warm.cache.hits
        assert warm.query(7, 3, min_cost).feasible
        assert warm.cache.hits == hits_before + 1

    def test_zero_budget_infeasible_everywhere(self, paper_index):
        warm = make_cached(paper_index, capacity=8)
        for s, t in ((0, 5), (2, 9), (7, 3)):
            assert not warm.query(s, t, 0).feasible


class TestFrontierGroundTruth:
    def test_frontier_equals_dijkstra_skyline(
        self, paper_network, paper_index
    ):
        """Cached frontiers equal the index-free skyline ground truth."""
        warm = make_cached(paper_index, capacity=128)
        n = paper_network.num_vertices
        for s in range(n):
            for t in range(s + 1, n):
                got = [(e[0], e[1]) for e in warm.frontier(s, t)]
                want = skyline_between(paper_network, s, t)
                assert got == [(w, c) for w, c, *_ in want], (s, t)

    def test_orientation_symmetric(self, paper_index):
        warm = make_cached(paper_index, capacity=8)
        fwd = [(e[0], e[1]) for e in warm.frontier(7, 3)]
        rev = [(e[0], e[1]) for e in warm.frontier(3, 7)]
        assert fwd == rev
        assert warm.cache.misses == 1  # second orientation was a hit


class TestPathsThroughCache:
    def test_hit_paths_are_valid_walks(self, paper_network, paper_index):
        warm = make_cached(paper_index, capacity=8)
        warm.query(7, 3, 13)  # prime the cache
        result = warm.query(7, 3, 13, want_path=True)  # answered on a hit
        assert result.feasible
        path = result.path
        assert path[0] == 7 and path[-1] == 3
        assert paper_network.path_metrics(path) == (
            result.weight, result.cost,
        )

    def test_source_equals_target(self, paper_index):
        warm = make_cached(paper_index, capacity=8)
        result = warm.query(4, 4, 0, want_path=True)
        assert answer(result) == (True, 0, 0)
        assert result.path == [4]


class TestSharedCacheObject:
    def test_engines_can_share_one_cache(self, paper_index, paper_uncached):
        cache = SkylineCache(16)
        first = CachedQHLEngine(
            paper_index.tree, paper_index.labels, paper_index.lca,
            cache=cache,
        )
        second = CachedQHLEngine(
            paper_index.tree, paper_index.labels, paper_index.lca,
            cache=cache,
        )
        first.query(7, 3, 13)
        assert answer(second.query(7, 3, 13)) == answer(
            paper_uncached.query(7, 3, 13)
        )
        assert cache.misses == 1 and cache.hits == 1
