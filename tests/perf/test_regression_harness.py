"""The perf-regression gate: pinned workloads, tolerance bands, trips."""

from __future__ import annotations

import copy
import json

from benchmarks.regress import (
    EXACT_FIELDS,
    LATENCY_TOLERANCE,
    OVERHEAD_BUDGET,
    _percentile,
    check,
    main,
    measure,
    measure_overhead,
    pinned_workload,
)
from repro.datasets import load_dataset


def fake_measurement() -> dict:
    return {
        "engines": {
            "qhl": {
                "p50_norm": 0.002, "p95_norm": 0.005,
                "hoplinks": 100, "concatenations": 200,
                "label_lookups": 300, "feasible": 40,
            },
            "cached": {
                "p50_norm": 0.0002, "p95_norm": 0.0005,
                "hoplinks": 150, "concatenations": 250,
                "label_lookups": 350, "feasible": 40,
            },
        }
    }


class TestCheckLogic:
    def test_identical_measurement_passes(self):
        baseline = fake_measurement()
        assert check(copy.deepcopy(baseline), baseline) == []

    def test_latency_within_band_passes(self):
        baseline = fake_measurement()
        measured = copy.deepcopy(baseline)
        for engine in measured["engines"].values():
            engine["p50_norm"] *= LATENCY_TOLERANCE * 0.95
        assert check(measured, baseline) == []

    def test_latency_over_band_fails(self):
        baseline = fake_measurement()
        measured = copy.deepcopy(baseline)
        measured["engines"]["qhl"]["p95_norm"] *= LATENCY_TOLERANCE * 1.1
        failures = check(measured, baseline)
        assert len(failures) == 1
        assert "qhl" in failures[0] and "p95_norm" in failures[0]

    def test_synthetic_slowdown_trips_every_engine(self):
        baseline = fake_measurement()
        failures = check(
            copy.deepcopy(baseline), baseline, slowdown=2.0
        )
        # 2x > 1.6x band: both engines fail on both percentiles.
        assert len(failures) == 4

    def test_op_count_drift_is_exact_not_banded(self):
        baseline = fake_measurement()
        measured = copy.deepcopy(baseline)
        measured["engines"]["qhl"]["hoplinks"] += 1  # 1 op off: fails
        failures = check(measured, baseline)
        assert len(failures) == 1
        assert "hoplinks" in failures[0]

    def test_missing_engine_fails(self):
        baseline = fake_measurement()
        measured = copy.deepcopy(baseline)
        del measured["engines"]["cached"]
        failures = check(measured, baseline)
        assert any("missing" in f for f in failures)

    def test_faster_is_never_a_failure(self):
        baseline = fake_measurement()
        measured = copy.deepcopy(baseline)
        for engine in measured["engines"].values():
            engine["p50_norm"] *= 0.1
            engine["p95_norm"] *= 0.1
        assert check(measured, baseline) == []


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 50) == 0.0

    def test_single_sample_every_quantile(self):
        for q in (0, 50, 95, 99, 100):
            assert _percentile([7.0], q) == 7.0

    def test_interpolates(self):
        assert _percentile([1.0, 2.0, 3.0], 50) == 2.0
        assert _percentile([1.0, 3.0], 50) == 2.0
        assert _percentile([0.0, 10.0], 95) == 9.5


class TestPinnedWorkload:
    def test_same_seed_same_queries(self):
        network = load_dataset("NY", scale="small").network
        first = pinned_workload(network, 30, seed=5)
        second = pinned_workload(network, 30, seed=5)
        assert first == second
        assert pinned_workload(network, 30, seed=6) != first


class TestEndToEnd:
    def test_measure_then_check_round_trip(self, tmp_path):
        measured = measure(num_queries=24, repetitions=2)
        for name in ("qhl", "cached", "csp2hop", "batch"):
            engine = measured["engines"][name]
            for field in EXACT_FIELDS + ("p50_norm", "p95_norm"):
                assert field in engine, (name, field)
        # A measurement always passes against itself...
        assert check(copy.deepcopy(measured), measured) == []
        # ...and a seeded 2x slowdown always trips the gate.
        assert check(copy.deepcopy(measured), measured, slowdown=2.0)

    def test_main_check_against_fresh_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        out = tmp_path / "BENCH_regression.json"
        measured = measure(num_queries=24, repetitions=2)
        with open(baseline, "w") as handle:
            json.dump(measured, handle)
        # A loose band keeps this wiring test immune to scheduler
        # noise in tiny re-measurements; the band logic itself is
        # covered synthetically in TestCheckLogic.
        argv = [
            "--check", "--queries", "24", "--reps", "2",
            "--baseline", str(baseline), "--out", str(out),
            "--tolerance", "50.0",
        ]
        assert main(argv) == 0
        assert json.loads(out.read_text())["engines"]
        assert main(argv + ["--slowdown", "1000.0"]) == 1

    def test_inert_recorder_overhead_within_budget(self):
        result = measure_overhead(num_queries=40, repetitions=3)
        assert result["hook_ns"] > 0
        assert result["overhead"] <= OVERHEAD_BUDGET
