"""Shared fixtures for the serving-layer / chaos suite."""

from __future__ import annotations

import pytest

from repro.core import QHLIndex
from repro.graph import grid_network


class FakeClock:
    """A manually advanced monotonic clock for deterministic tests."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fake_clock():
    return FakeClock()


@pytest.fixture(scope="session")
def service_grid():
    """An 8x8 grid: large enough for non-trivial ladder queries."""
    return grid_network(8, 8, seed=1)


@pytest.fixture(scope="session")
def service_index(service_grid):
    return QHLIndex.build(service_grid, num_index_queries=200, seed=1)
