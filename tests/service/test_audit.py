"""The deep index audit and its corruption matrix.

Five seeded corruption classes, each mapped to the named check that
must catch it:

==============================  ======================
corruption                      failing check
==============================  ======================
dominated skyline entry         ``label-dominance``
swapped / non-increasing costs  ``label-order``
dropped hoplink                 ``label-coverage``
truncated label table           ``label-coverage``
stale storage checksum          ``storage-checksum`` (``repro verify``)
flat: duplicated cost           ``label-order``
flat: unsorted hubs             ``flat-columns``
flat: broken offset table       ``flat-columns``
flat: bit-flipped envelope      ``storage-checksum`` (``verify --flat``)
==============================  ======================

Plus: the audit passes on every honestly built index, the wrong-values
class (structurally valid, semantically wrong) falls to the
spot-check, and the :class:`~repro.service.ladder.QueryService`
``require_audit`` gate degrades instead of serving from a bad index.
"""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.cli import main
from repro.exceptions import AuditError, SerializationError
from repro.observability.metrics import MetricsRegistry, use_registry
from repro.resilience.audit import audit_index
from repro.service import QueryService, ServiceConfig
from repro.storage.serialize import load_index, save_index


# ----------------------------------------------------------------------
# Corruption helpers (each returns a deep-copied, seeded-bad index)
# ----------------------------------------------------------------------
def _rich_pair(index, min_entries=2):
    """Some ``(v, u, entries)`` with at least ``min_entries`` entries."""
    for v, u, entries in index.labels.items():
        if len(entries) >= min_entries:
            return v, u, entries
    raise AssertionError("index has no skyline set large enough")


def corrupt_dominated_entry(index):
    """Append an entry dominated by the set's last entry (costs stay
    sorted, so only dominance-freeness breaks)."""
    bad = copy.deepcopy(index)
    _v, _u, entries = _rich_pair(bad, min_entries=1)
    last = entries[-1]
    entries.append((last[0], last[1] + 1, None))
    return bad


def corrupt_cost_order(index):
    """Swap the first two entries of one set: costs now decrease."""
    bad = copy.deepcopy(index)
    _v, _u, entries = _rich_pair(bad)
    entries[0], entries[1] = entries[1], entries[0]
    return bad


def corrupt_dropped_hoplink(index):
    """Delete one hub from one label: an ancestor loses its entry."""
    bad = copy.deepcopy(index)
    v, u, _entries = _rich_pair(bad, min_entries=1)
    del bad.labels.label(v)[u]
    return bad


def corrupt_truncated_table(index):
    """Wipe the whole label of the deepest vertices, as a torn write
    to a label table would."""
    bad = copy.deepcopy(index)
    victims = sorted(
        range(bad.tree.num_vertices),
        key=lambda v: bad.tree.depth[v],
        reverse=True,
    )[:3]
    for v in victims:
        bad.labels.label(v).clear()
    return bad


def corrupt_label_values(index):
    """Halve every weight: structurally pristine, semantically wrong."""
    bad = copy.deepcopy(index)
    for v, u, entries in list(bad.labels.items()):
        bad.labels.set(
            v, u, [(w * 0.5, c, None) for (w, c, *_rest) in entries]
        )
    return bad


CORRUPTIONS = {
    "dominated-entry": (corrupt_dominated_entry, "label-dominance"),
    "swapped-cost-order": (corrupt_cost_order, "label-order"),
    "dropped-hoplink": (corrupt_dropped_hoplink, "label-coverage"),
    "truncated-table": (corrupt_truncated_table, "label-coverage"),
}


# ----------------------------------------------------------------------
# audit_index() itself
# ----------------------------------------------------------------------
class TestAuditIndex:
    def test_clean_index_passes_every_check(self, service_index):
        report = audit_index(service_index, queries=6, seed=3)
        assert report.ok
        assert {check.name for check in report.checks} == {
            "tree-structure",
            "label-order",
            "label-dominance",
            "label-coverage",
            "lca",
            "spot-check",
        }
        assert all(check.checked > 0 for check in report.checks)

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_each_corruption_trips_its_check(self, service_index, name):
        mutate, expected_check = CORRUPTIONS[name]
        bad = mutate(service_index)
        report = audit_index(bad, queries=0, seed=0)
        assert not report.ok
        assert expected_check in report.failed_checks(), (
            f"{name}: expected {expected_check} to fail, "
            f"got {report.failed_checks()}"
        )

    def test_order_and_dominance_checks_are_distinct(self, service_index):
        # An equal-cost entry with still-decreasing weights violates
        # *only* the cost order; an appended dominated entry violates
        # *only* dominance-freeness.
        order_bad = copy.deepcopy(service_index)
        _v, _u, entries = _rich_pair(order_bad)
        entries[1] = (entries[1][0], entries[0][1], None)
        report = audit_index(order_bad, queries=0)
        assert "label-order" in report.failed_checks()
        assert "label-dominance" not in report.failed_checks()

        dom_bad = corrupt_dominated_entry(service_index)
        report = audit_index(dom_bad, queries=0)
        assert "label-dominance" in report.failed_checks()
        assert "label-order" not in report.failed_checks()

    def test_wrong_values_fall_to_the_spot_check(self, service_index):
        bad = corrupt_label_values(service_index)
        structural = audit_index(bad, queries=0)
        assert structural.ok  # order/dominance/coverage all still hold
        semantic = audit_index(bad, queries=8, seed=1)
        assert semantic.failed_checks() == ["spot-check"]

    def test_report_is_machine_readable(self, service_index):
        bad = corrupt_dropped_hoplink(service_index)
        data = audit_index(bad, queries=0).to_dict()
        assert data["ok"] is False
        by_name = {check["name"]: check for check in data["checks"]}
        coverage = by_name["label-coverage"]
        assert coverage["problem_count"] >= 1
        assert "missing" in coverage["problems"][0]

    def test_index_audit_facade(self, service_index):
        assert service_index.audit(queries=2, seed=0).ok

    def test_audit_metrics_land_in_registry(self, service_index):
        registry = MetricsRegistry()
        bad = corrupt_dominated_entry(service_index)
        with use_registry(registry):
            audit_index(service_index, queries=2, seed=0)
            audit_index(bad, queries=0, seed=0)
        assert registry.counter(
            "audit_runs_total", {"status": "pass"}
        ).value == 1
        assert registry.counter(
            "audit_runs_total", {"status": "fail"}
        ).value == 1
        assert registry.counter(
            "audit_checks_total",
            {"check": "label-dominance", "status": "fail"},
        ).value == 1
        assert registry.counter(
            "audit_problems_total", {"check": "label-dominance"}
        ).value >= 1
        assert registry.gauge("audit_seconds").value >= 0


# ----------------------------------------------------------------------
# The CLI corruption matrix: `repro-qhl verify` flags all 5 classes
# ----------------------------------------------------------------------
class TestVerifyCommand:
    def _saved(self, index, tmp_path, name):
        path = str(tmp_path / name)
        save_index(index, path)
        return path

    def test_clean_index_verifies(self, service_index, tmp_path, capsys):
        path = self._saved(service_index, tmp_path, "clean.idx")
        assert main(["verify", "--index", path, "--queries", "4"]) == 0
        out = capsys.readouterr().out
        assert "audit PASS" in out
        assert "storage-checksum" in out

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_verify_flags_label_corruptions(
        self, service_index, tmp_path, capsys, name
    ):
        mutate, expected_check = CORRUPTIONS[name]
        path = self._saved(mutate(service_index), tmp_path, f"{name}.idx")
        assert main(
            ["verify", "--index", path, "--queries", "0"]
        ) == 1
        out = capsys.readouterr().out
        assert "audit FAIL" in out
        assert f"FAIL {expected_check}" in out

    def test_verify_flags_stale_checksum(
        self, service_index, tmp_path, capsys
    ):
        path = self._saved(service_index, tmp_path, "stale.idx")
        # Flip one payload byte but keep the recorded checksum: the
        # classic stale-checksum / bit-rot corruption.
        with open(path, "rb") as f:
            envelope = pickle.load(f)
        payload = bytearray(envelope["payload"])
        payload[len(payload) // 2] ^= 0xFF
        envelope["payload"] = bytes(payload)
        with open(path, "wb") as f:
            pickle.dump(envelope, f)
        with pytest.raises(SerializationError):
            load_index(path)
        assert main(["verify", "--index", path]) == 1
        out = capsys.readouterr().out
        assert "FAIL storage-checksum" in out

    def test_verify_json_output(self, service_index, tmp_path, capsys):
        import json

        bad = corrupt_cost_order(service_index)
        path = self._saved(bad, tmp_path, "bad.idx")
        assert main(
            ["verify", "--index", path, "--queries", "0", "--json"]
        ) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        failed = [c["name"] for c in data["checks"] if not c["ok"]]
        assert "label-order" in failed


# ----------------------------------------------------------------------
# Flat (columnar) indexes: the same audit plus the flat-columns check
# ----------------------------------------------------------------------
class TestFlatIndexAudit:
    """Seeded corruption over flat columns.

    ``FlatIndex.from_index`` packs *fresh* arrays, so each fixture use
    gets a private, mutable column set — corrupting it cannot leak into
    the session-scoped ``service_index``.
    """

    @pytest.fixture()
    def flat_index(self, service_index):
        from repro.core.flat import FlatIndex

        return FlatIndex.from_index(service_index)

    def _rich_set_bounds(self, labels, min_entries=2):
        """Bounds of some skyline set with at least ``min_entries``."""
        offsets = labels.entry_offsets
        for i in range(len(offsets) - 1):
            if offsets[i + 1] - offsets[i] >= min_entries:
                return offsets[i], offsets[i + 1]
        raise AssertionError("flat index has no set large enough")

    def test_clean_flat_index_passes_with_flat_columns_check(
        self, flat_index
    ):
        report = audit_index(flat_index, queries=6, seed=3)
        assert report.ok
        assert {check.name for check in report.checks} == {
            "tree-structure",
            "flat-columns",
            "label-order",
            "label-dominance",
            "label-coverage",
            "lca",
            "spot-check",
        }
        assert report.check("flat-columns").checked > 0

    def test_corrupt_cost_column_trips_label_order(self, flat_index):
        # Duplicate a cost inside one set: weights still decrease, so
        # only the strictly-increasing-cost invariant breaks — the same
        # audit check that catches it on object indexes.
        lo, _hi = self._rich_set_bounds(flat_index.labels)
        flat_index.labels.costs[lo + 1] = flat_index.labels.costs[lo]
        report = audit_index(flat_index, queries=0)
        assert "label-order" in report.failed_checks()

    def test_corrupt_hub_order_trips_flat_columns(self, flat_index):
        labels = flat_index.labels
        for v in range(labels.num_vertices):
            lo, hi = labels.set_offsets[v], labels.set_offsets[v + 1]
            if hi - lo >= 2:
                labels.hubs[lo], labels.hubs[lo + 1] = (
                    labels.hubs[lo + 1],
                    labels.hubs[lo],
                )
                break
        else:
            raise AssertionError("no vertex with two hubs")
        report = audit_index(flat_index, queries=0)
        assert "flat-columns" in report.failed_checks()

    def test_corrupt_offset_table_trips_flat_columns(self, flat_index):
        offsets = flat_index.labels.entry_offsets
        mid = len(offsets) // 2
        offsets[mid] = offsets[mid + 1] + 1  # no longer non-decreasing
        report = audit_index(flat_index, queries=0)
        assert "flat-columns" in report.failed_checks()

    def test_verify_flat_clean_and_bit_flipped(
        self, service_index, tmp_path, capsys
    ):
        from repro.storage import save_flat_index

        path = str(tmp_path / "clean.qflat")
        save_flat_index(service_index, path)
        assert main(
            ["verify", "--index", path, "--flat", "--queries", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "audit PASS" in out
        assert "flat-columns" in out

        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0x10
        with open(path, "wb") as f:
            f.write(bytes(data))
        assert main(
            ["verify", "--index", path, "--flat", "--queries", "0"]
        ) == 1
        out = capsys.readouterr().out
        assert "FAIL storage-checksum" in out


# ----------------------------------------------------------------------
# The service's require_audit gate
# ----------------------------------------------------------------------
class TestRequireAuditGate:
    def test_clean_index_serves_normally(self, service_index):
        service = QueryService(
            index=service_index,
            config=ServiceConfig(require_audit=True, audit_queries=2),
        )
        assert service.tiers == ["QHL", "CSP-2Hop", "SkyDijkstra"]
        assert service.audit_report is not None and service.audit_report.ok
        assert service.query(0, 63, budget=400).engine == "QHL"

    def test_bad_index_degrades_to_index_free_tier(self, service_index):
        bad = corrupt_dominated_entry(service_index)
        registry = MetricsRegistry()
        with use_registry(registry):
            service = QueryService(
                index=bad,
                config=ServiceConfig(require_audit=True, audit_queries=0),
            )
        assert service.tiers == ["SkyDijkstra"]
        assert isinstance(service.index_load_error, AuditError)
        assert service.index_load_error.report is not None
        assert not service.audit_report.ok
        assert registry.counter(
            "service_index_audit_failures_total"
        ).value == 1
        # Still answers queries, exactly, just slower.
        result = service.query(0, 63, budget=400)
        assert result.engine == "SkyDijkstra"
        assert result.feasible

    def test_bad_index_with_no_fallback_raises(self, service_index):
        bad = corrupt_cost_order(service_index)
        with pytest.raises(AuditError, match="self-audit"):
            QueryService(
                index=bad,
                config=ServiceConfig(
                    require_audit=True,
                    audit_queries=0,
                    tiers=("QHL", "CSP-2Hop"),
                ),
            )

    def test_gate_off_by_default(self, service_index):
        bad = corrupt_dominated_entry(service_index)
        service = QueryService(index=bad)
        assert service.audit_report is None
        assert "QHL" in service.tiers
