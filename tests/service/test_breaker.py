"""Circuit breaker state machine, driven by a fake clock."""

import pytest

from repro.service import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


@pytest.fixture
def breaker(fake_clock):
    return CircuitBreaker(
        failure_threshold=3, reset_timeout=10.0, backoff_factor=2.0,
        max_timeout=40.0, clock=fake_clock,
    )


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_opens_after_backoff(self, breaker, fake_clock):
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        fake_clock.advance(9.9)
        assert not breaker.allow()
        fake_clock.advance(0.2)
        assert breaker.allow()  # the probe call
        assert breaker.state == HALF_OPEN

    def test_successful_probe_closes(self, breaker, fake_clock):
        for _ in range(3):
            breaker.record_failure()
        fake_clock.advance(10.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_with_longer_backoff(
        self, breaker, fake_clock
    ):
        for _ in range(3):
            breaker.record_failure()
        fake_clock.advance(10.5)
        assert breaker.allow()
        breaker.record_failure()  # failed probe: timeout doubles to 20 s
        assert breaker.state == OPEN
        fake_clock.advance(10.5)
        assert not breaker.allow()
        fake_clock.advance(10.0)
        assert breaker.allow()

    def test_backoff_is_capped(self, breaker, fake_clock):
        for _ in range(3):
            breaker.record_failure()
        # Fail four probes: 10 -> 20 -> 40 -> capped at 40.
        for _ in range(4):
            fake_clock.advance(100.0)
            assert breaker.allow()
            breaker.record_failure()
        fake_clock.advance(40.5)
        assert breaker.allow()

    def test_transition_callback_sees_every_flip(self, fake_clock):
        seen = []
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=fake_clock,
            on_transition=seen.append,
        )
        breaker.record_failure()
        fake_clock.advance(5.5)
        breaker.allow()
        breaker.record_success()
        assert seen == [OPEN, HALF_OPEN, CLOSED]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0)
