"""Deadline mechanics and cooperative enforcement in the engines."""

import time

import pytest

from repro.baselines import constrained_dijkstra, sky_dijkstra_csp
from repro.exceptions import DeadlineExceededError
from repro.graph import grid_network
from repro.service import Deadline


class TestDeadlineObject:
    def test_not_expired_initially(self, fake_clock):
        deadline = Deadline(10.0, clock=fake_clock)
        assert not deadline.expired()
        deadline.check()  # must not raise

    def test_expires_with_the_clock(self, fake_clock):
        deadline = Deadline(10.0, clock=fake_clock)
        fake_clock.advance(10.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError):
            deadline.check()

    def test_from_ms(self, fake_clock):
        deadline = Deadline.from_ms(250, clock=fake_clock)
        assert deadline.seconds == pytest.approx(0.25)
        fake_clock.advance(0.249)
        assert not deadline.expired()
        fake_clock.advance(0.002)
        assert deadline.expired()

    def test_remaining_and_elapsed(self, fake_clock):
        deadline = Deadline(5.0, clock=fake_clock)
        fake_clock.advance(2.0)
        assert deadline.elapsed() == pytest.approx(2.0)
        assert deadline.remaining() == pytest.approx(3.0)

    def test_error_carries_budget_elapsed_and_stats(self, fake_clock):
        from repro.types import QueryStats

        deadline = Deadline.from_ms(100, clock=fake_clock)
        fake_clock.advance(0.35)
        stats = QueryStats(concatenations=42)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check(stats)
        err = excinfo.value
        assert err.budget_ms == pytest.approx(100)
        assert err.elapsed_ms == pytest.approx(350)
        assert err.stats.concatenations == 42

    def test_zero_budget_expires_immediately(self, fake_clock):
        deadline = Deadline(0.0, clock=fake_clock)
        with pytest.raises(DeadlineExceededError):
            deadline.check()


@pytest.fixture(scope="module")
def big_grid():
    """Large enough that a full skyline search takes well over 1 ms."""
    return grid_network(40, 40, seed=2)


class TestEngineDeadlines:
    def test_sky_dijkstra_1ms_budget_raises_promptly(self, big_grid):
        started = time.perf_counter()
        with pytest.raises(DeadlineExceededError) as excinfo:
            sky_dijkstra_csp(
                big_grid, 0, 1599, 10_000, deadline=Deadline.from_ms(1)
            )
        overshoot = time.perf_counter() - started
        # Bounded overshoot: the heap loop checks every 256 pops, so the
        # raise lands within a generous margin of the 1 ms budget.
        assert overshoot < 0.5
        # Partial stats survive on the exception.
        assert excinfo.value.stats is not None
        assert excinfo.value.stats.concatenations > 0

    def test_same_query_without_deadline_is_exact(self, big_grid):
        result = sky_dijkstra_csp(big_grid, 0, 1599, 10_000)
        truth = constrained_dijkstra(
            big_grid, 0, 1599, 10_000, want_path=False
        )
        assert result.pair() == truth.pair()

    def test_constrained_dijkstra_deadline(self, big_grid):
        with pytest.raises(DeadlineExceededError):
            constrained_dijkstra(
                big_grid, 0, 1599, 10_000, want_path=False,
                deadline=Deadline.from_ms(1),
            )

    def test_generous_deadline_does_not_interfere(self, service_index):
        plain = service_index.query(0, 63, 250)
        with_deadline = service_index.query(
            0, 63, 250, deadline=Deadline(60.0)
        )
        assert with_deadline.pair() == plain.pair()

    def test_qhl_engine_expired_deadline_raises(
        self, service_index, fake_clock
    ):
        engine = service_index.qhl_engine()
        deadline = Deadline(1.0, clock=fake_clock)
        fake_clock.advance(2.0)
        with pytest.raises(DeadlineExceededError):
            engine.query(0, 63, 250, deadline=deadline)

    def test_csp2hop_engine_expired_deadline_raises(
        self, service_index, fake_clock
    ):
        engine = service_index.csp2hop_engine()
        deadline = Deadline(1.0, clock=fake_clock)
        fake_clock.advance(2.0)
        with pytest.raises(DeadlineExceededError):
            engine.query(0, 63, 250, deadline=deadline)
