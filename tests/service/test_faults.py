"""Chaos suite: every registered injection point, injected.

The invariant under test (ISSUE acceptance): an injected fault at any
point yields either a *correct* answer (verified against
``sky_dijkstra_csp`` ground truth) via the degradation ladder, or a
typed :class:`~repro.exceptions.ReproError` — never an unhandled
exception, never a silently wrong path.
"""

import os

import pytest

from repro.baselines import sky_dijkstra_csp
from repro.core.qhl import QHLEngine
from repro.exceptions import (
    DeadlineExceededError,
    ReproError,
)
from repro.service import (
    INJECTION_POINTS,
    FaultInjector,
    FaultyLabelStore,
    QueryService,
    ServiceConfig,
    use_injector,
)
from repro.storage import save_index

QUERY = (0, 63, 250)


def assert_correct_or_typed(network, run):
    """Run ``run()``; the outcome must be exact or a typed ReproError."""
    s, t, budget = QUERY
    truth = sky_dijkstra_csp(network, s, t, budget).pair()
    try:
        result = run()
    except ReproError:
        return None
    assert result.pair() == truth
    return result


class TestInjectorMechanics:
    def test_unknown_point_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.fail("warp-drive")

    def test_schedule_is_deterministic(self):
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=2, after=1)
        outcomes = []
        for _ in range(5):
            try:
                injector.fire("engine-query")
                outcomes.append("ok")
            except RuntimeError:
                outcomes.append("boom")
        assert outcomes == ["ok", "boom", "boom", "ok", "ok"]

    def test_match_filters_context(self):
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=None,
                      match={"engine": "QHL"})
        injector.fire("engine-query", engine="CSP-2Hop")  # no raise
        with pytest.raises(RuntimeError):
            injector.fire("engine-query", engine="QHL")

    def test_null_injector_cannot_hold_rules(self):
        from repro.service import NULL_INJECTOR

        with pytest.raises(NotImplementedError):
            NULL_INJECTOR.fail("engine-query")
        NULL_INJECTOR.fire("engine-query")  # inert

    def test_exception_factory_and_instance(self):
        injector = FaultInjector()
        marker = OSError("the very one")
        injector.fail("index-load", exc=marker)
        with pytest.raises(OSError) as excinfo:
            injector.fire("index-load")
        assert excinfo.value is marker


class TestEveryInjectionPoint:
    """One chaos scenario per registered point, plus a sweep guard."""

    def test_all_points_are_exercised_here(self):
        covered = {
            "index-load", "save-index", "label-fetch", "engine-query",
            # (Time travel is not a registered point: the injector's
            # clock= argument replaces the deadline time source
            # directly, with no fire site — see docs/robustness.md.)
            # build-level's scenarios live in test_kill_resume.py: it
            # crashes checkpointed builds at every level boundary.
            "build-level",
            # The worker-supervision points live in tests/supervise:
            # the chaos matrix fails spawns, SIGKILLs tasks, and
            # suppresses heartbeats against real forked workers.
            "worker-spawn",
            "worker-task",
            "worker-heartbeat",
            # The live-update points live in tests/dynamic: the epoch
            # chaos matrix faults the journal append, the repair, and
            # the publish swap, and test_kill_update SIGKILLs a real
            # applier between append and publish.
            "update-journal-append",
            "update-repair",
            "update-publish",
        }
        assert covered == set(INJECTION_POINTS)

    def test_index_load_fault_degrades_to_exact_answer(
        self, service_index, service_grid, tmp_path
    ):
        path = str(tmp_path / "x.idx")
        save_index(service_index, path)
        injector = FaultInjector()
        injector.fail("index-load", exc=OSError, times=None)
        with use_injector(injector):
            service = QueryService(
                index_path=path, network=service_grid,
                config=ServiceConfig(load_attempts=2),
            )
            result = assert_correct_or_typed(
                service_grid, lambda: service.query(*QUERY)
            )
        # The ladder degraded to the index-free tier but stayed exact.
        assert result is not None and result.engine == "SkyDijkstra"
        assert service.index_load_error is not None

    @pytest.mark.parametrize("stage", ["write", "fsync", "replace"])
    def test_save_index_fault_is_typed_and_non_corrupting(
        self, service_index, tmp_path, stage
    ):
        path = str(tmp_path / "x.idx")
        injector = FaultInjector()
        injector.fail("save-index", exc=OSError, match={"stage": stage})
        with use_injector(injector):
            with pytest.raises(OSError):
                save_index(service_index, path)
        assert not os.path.exists(path)

    def test_label_fetch_fault_falls_back_to_exact_answer(
        self, service_index, service_grid
    ):
        faulty = QHLEngine(
            service_index.tree,
            FaultyLabelStore(service_index.labels),
            service_index.lca,
            service_index.pruning,
        )
        service = QueryService(
            index=service_index,
            engines=[faulty, service_index.csp2hop_engine()],
            network=service_grid,
        )
        injector = FaultInjector()
        injector.fail("label-fetch", exc=OSError, times=None)
        with use_injector(injector):
            result = assert_correct_or_typed(
                service_grid, lambda: service.query(*QUERY)
            )
        assert result is not None and result.engine == "CSP-2Hop"

    @pytest.mark.parametrize("tier", ["QHL", "CSP-2Hop", "SkyDijkstra"])
    def test_engine_query_fault_per_tier(
        self, service_index, service_grid, tier
    ):
        service = QueryService(index=service_index)
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=None,
                      match={"engine": tier})
        with use_injector(injector):
            result = assert_correct_or_typed(
                service_grid, lambda: service.query(*QUERY)
            )
        # Killing one tier still gets an exact answer from another.
        assert result is not None and result.engine != tier

    def test_engine_query_fault_everywhere_is_typed(
        self, service_index, service_grid
    ):
        service = QueryService(index=service_index)
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=None)
        with use_injector(injector):
            assert assert_correct_or_typed(
                service_grid, lambda: service.query(*QUERY)
            ) is None

    def test_clock_fault_controls_the_deadline(
        self, service_index, service_grid, fake_clock
    ):
        service = QueryService(index=service_index)

        # A frozen injected clock: even a microscopic budget never
        # expires, proving deadlines run on the injected time source.
        with use_injector(FaultInjector(clock=fake_clock)):
            result = service.query(*QUERY, deadline_ms=0.001)
        assert result.pair() == sky_dijkstra_csp(
            service_grid, *QUERY
        ).pair()

        # A clock that leaps 100 s per reading: the first cooperative
        # checkpoint after arming sees the budget blown — typed error.
        class JumpingClock:
            now = 0.0

            def __call__(self):
                JumpingClock.now += 100.0
                return JumpingClock.now

        with use_injector(FaultInjector(clock=JumpingClock())):
            with pytest.raises(DeadlineExceededError):
                service.query(*QUERY, deadline_ms=50)

    def test_chaos_sweep_random_schedules_never_unhandled(
        self, service_index, service_grid
    ):
        """A deterministic storm: staggered faults across many queries."""
        service = QueryService(
            index=service_index,
            config=ServiceConfig(breaker_failure_threshold=2,
                                 breaker_reset_s=0.001),
        )
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=3, after=1,
                      match={"engine": "QHL"})
        injector.fail("engine-query", exc=ReproError, times=2, after=2,
                      match={"engine": "CSP-2Hop"})
        s, t, budget = QUERY
        truth = sky_dijkstra_csp(service_grid, s, t, budget).pair()
        answered = 0
        with use_injector(injector):
            for _ in range(8):
                try:
                    result = service.query(s, t, budget)
                except ReproError:
                    continue
                assert result.pair() == truth
                answered += 1
        assert answered >= 6  # the storm only grazed the ladder
