"""Flight recording inside the QueryService: the serving black box."""

from __future__ import annotations

import glob
import os

import pytest

from repro.exceptions import (
    DeadlineExceededError,
    QueryError,
    ServiceUnavailableError,
)
from repro.observability.flight import load_flight
from repro.service import (
    FaultInjector,
    QueryService,
    ServiceConfig,
    use_injector,
)

QUERY = (0, 63, 250)


class TestPerQueryRecords:
    def test_answered_query_leaves_one_record(self, service_index):
        service = QueryService(index=service_index)
        result = service.query(*QUERY)
        assert service.flight is not None
        records = service.flight.records()
        assert len(records) == 1
        record = records[0]
        assert record.engine == result.engine == "QHL"
        assert record.outcome == "ok"
        assert (record.source, record.target) == QUERY[:2]
        assert record.trace_id is not None
        assert record.seconds > 0
        assert record.hoplinks == result.stats.hoplinks

    def test_cache_hit_flag_tracks_the_qhl_cache(self, service_index):
        service = QueryService(
            index=service_index, config=ServiceConfig(cache_size=8)
        )
        service.query(*QUERY)
        service.query(*QUERY)
        first, second = service.flight.records()
        assert first.cache_hit is False
        assert second.cache_hit is True

    def test_cache_hit_is_none_without_a_cache(self, service_index):
        service = QueryService(index=service_index)
        service.query(*QUERY)
        assert service.flight.records()[0].cache_hit is None

    def test_deadline_margin_recorded(self, service_index):
        service = QueryService(index=service_index)
        service.query(*QUERY, deadline_ms=10_000)
        record = service.flight.records()[0]
        assert record.deadline_margin_ms is not None
        assert 0 < record.deadline_margin_ms <= 10_000

    def test_malformed_query_recorded_as_failure(self, service_index):
        service = QueryService(index=service_index)
        with pytest.raises(QueryError):
            service.query(0, 10_000, 250)
        record = service.flight.records()[0]
        assert record.engine == "none"
        assert record.outcome == "QueryError"
        assert record.failed
        assert service.flight.slow_records() == [record]

    def test_deadline_expiry_recorded_with_its_tier(self, service_index):
        service = QueryService(index=service_index)
        with pytest.raises(DeadlineExceededError):
            service.query(*QUERY, deadline_ms=0.0)
        record = service.flight.records()[0]
        assert record.outcome == "DeadlineExceededError"
        assert record.failed

    def test_flight_disabled_by_config(self, service_index):
        service = QueryService(
            index=service_index, config=ServiceConfig(flight_records=0)
        )
        assert service.flight is None
        result = service.query(*QUERY)  # inert recorder: still answers
        assert result.feasible

    def test_slow_threshold_from_config(self, service_index):
        service = QueryService(
            index=service_index,
            config=ServiceConfig(flight_slow_ms=0.0001),
        )
        service.query(*QUERY)
        record = service.flight.records()[0]
        assert record.slow
        assert service.flight.slow_records() == [record]


class TestAutoDump:
    def test_service_unavailable_dumps_the_ring(
        self, service_index, tmp_path
    ):
        dump_dir = str(tmp_path / "dumps")
        service = QueryService(
            index=service_index,
            config=ServiceConfig(flight_dump_dir=dump_dir),
        )
        service.query(*QUERY)  # something in the ring to preserve
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=None)
        with use_injector(injector):
            with pytest.raises(ServiceUnavailableError):
                service.query(*QUERY)
        assert service.last_flight_dump is not None
        assert "service-unavailable" in service.last_flight_dump
        loaded = load_flight(service.last_flight_dump)
        assert loaded[-1].outcome == "ServiceUnavailableError"

    def test_breaker_trip_dumps_forensics(self, service_index, tmp_path):
        dump_dir = str(tmp_path / "dumps")
        service = QueryService(
            index=service_index,
            config=ServiceConfig(
                flight_dump_dir=dump_dir,
                breaker_failure_threshold=2,
            ),
        )
        service.query(*QUERY)
        injector = FaultInjector()
        injector.fail(
            "engine-query", exc=RuntimeError, times=None,
            match={"engine": "QHL"},
        )
        with use_injector(injector):
            service.query(*QUERY)  # failure 1 (answered by CSP-2Hop)
            service.query(*QUERY)  # failure 2 -> QHL breaker opens
        assert service.breaker("QHL").state == "open"
        dumps = glob.glob(os.path.join(dump_dir, "*.jsonl"))
        assert any("breaker-open-QHL" in name for name in dumps)

    def test_no_dump_dir_means_no_files(self, service_index):
        service = QueryService(index=service_index)
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=None)
        with use_injector(injector):
            with pytest.raises(ServiceUnavailableError):
                service.query(*QUERY)
        assert service.last_flight_dump is None


class TestBatchJoin:
    def test_query_batch_failure_rows_join_the_flight_ring(
        self, service_index
    ):
        service = QueryService(index=service_index)
        report = service.query_batch([QUERY, (0, 10_000, 250)])
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.trace_id is not None
        assert failure.flight_seq is not None
        by_seq = {r.seq: r for r in service.flight.records()}
        entry = by_seq[failure.flight_seq]
        assert entry.trace_id == failure.trace_id
        assert entry.outcome == failure.error
