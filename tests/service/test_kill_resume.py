"""Kill-and-resume chaos: interrupted builds continue to identical bytes.

Two layers of violence:

* :class:`~repro.service.faults.FaultInjector` crashes the build at the
  ``build-level`` point — before and after every level's checkpoint
  write, for every level, sequential and parallel — and ``resume=True``
  must land on ``pack_labels`` bytes identical to an uninterrupted
  build.
* One real ``SIGKILL``: a subprocess is killed mid-build with no chance
  to clean up, and the parent resumes from whatever hit the disk.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.graph import grid_network
from repro.hierarchy.decomposition import build_tree_decomposition
from repro.labeling.builder import build_labels
from repro.labeling.parallel import depth_levels
from repro.resilience.checkpoint import build_labels_checkpointed
from repro.service.faults import FaultInjector, use_injector
from repro.storage.compact import pack_labels


class BuildCrash(RuntimeError):
    """The injected 'process died here' stand-in."""


@pytest.fixture(scope="module")
def tree():
    return build_tree_decomposition(grid_network(6, 6, seed=5))


@pytest.fixture(scope="module")
def fresh_bytes(tree):
    return pack_labels(build_labels(tree))


class TestInjectedCrashes:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("stage", ["computed", "checkpointed"])
    def test_crash_at_every_level_boundary_then_resume(
        self, tree, fresh_bytes, tmp_path, workers, stage
    ):
        num_levels = len(depth_levels(tree))
        for level in range(num_levels):
            directory = str(tmp_path / f"{stage}-w{workers}-l{level}")
            injector = FaultInjector()
            injector.fail(
                "build-level",
                exc=BuildCrash,
                match={"level": level, "stage": stage},
            )
            with use_injector(injector):
                with pytest.raises(BuildCrash):
                    build_labels_checkpointed(
                        tree, directory, workers=workers
                    )
            resumed = build_labels_checkpointed(
                tree, directory, workers=workers, resume=True
            )
            assert pack_labels(resumed) == fresh_bytes, (
                f"crash at level {level} stage {stage!r} "
                f"(workers={workers}) did not resume cleanly"
            )

    def test_repeated_crashes_still_converge(self, tree, fresh_bytes,
                                             tmp_path):
        """Crash on every single level, resuming between crashes —
        the worst uptime imaginable still finishes the build."""
        directory = str(tmp_path)
        num_levels = len(depth_levels(tree))
        for level in range(num_levels):
            injector = FaultInjector()
            injector.fail(
                "build-level",
                exc=BuildCrash,
                match={"level": level, "stage": "checkpointed"},
            )
            with use_injector(injector):
                with pytest.raises(BuildCrash):
                    build_labels_checkpointed(
                        tree, directory, resume=level > 0
                    )
        store = build_labels_checkpointed(tree, directory, resume=True)
        assert pack_labels(store) == fresh_bytes

    def test_crash_before_checkpoint_loses_only_that_level(
        self, tree, tmp_path
    ):
        injector = FaultInjector()
        injector.fail(
            "build-level",
            exc=BuildCrash,
            match={"level": 2, "stage": "computed"},
        )
        with use_injector(injector):
            with pytest.raises(BuildCrash):
                build_labels_checkpointed(tree, str(tmp_path))
        names = sorted(
            name for name in os.listdir(tmp_path)
            if name.startswith("level-")
        )
        assert names == ["level-000000.ckpt", "level-000001.ckpt"]


_CHILD = textwrap.dedent(
    """
    import os, signal, sys

    from repro.graph import grid_network
    from repro.hierarchy.decomposition import build_tree_decomposition
    from repro.resilience.checkpoint import build_labels_checkpointed
    from repro.service.faults import FaultInjector, set_injector

    directory, kill_level = sys.argv[1], int(sys.argv[2])

    def die():
        os.kill(os.getpid(), signal.SIGKILL)

    injector = FaultInjector()
    injector.fail(
        "build-level", exc=die,
        match={"level": kill_level, "stage": "checkpointed"},
    )
    set_injector(injector)
    tree = build_tree_decomposition(grid_network(6, 6, seed=5))
    build_labels_checkpointed(tree, directory)
    raise SystemExit("unreachable: the build should have been killed")
    """
)


class TestRealSigkill:
    def test_sigkilled_build_resumes_byte_identical(
        self, tree, fresh_bytes, tmp_path
    ):
        directory = str(tmp_path)
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir, "src"
        )
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD, directory, "1"],
            env=env,
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        # The kill left a partial checkpoint directory behind.
        assert any(
            name.startswith("level-") for name in os.listdir(directory)
        )
        resumed = build_labels_checkpointed(tree, directory, resume=True)
        assert pack_labels(resumed) == fresh_bytes
