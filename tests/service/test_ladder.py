"""The degradation ladder: fallback order, breakers, and metrics."""

import pytest

from repro.baselines import sky_dijkstra_csp
from repro.exceptions import (
    QueryError,
    ReproError,
    ServiceUnavailableError,
)
from repro.observability.metrics import MetricsRegistry, use_registry
from repro.service import (
    FaultInjector,
    QueryService,
    ServiceConfig,
    use_injector,
)

QUERIES = [(0, 63, 250), (7, 56, 300), (3, 60, 10_000)]


def ground_truth(network, s, t, budget):
    return sky_dijkstra_csp(network, s, t, budget).pair()


@pytest.fixture
def service(service_index):
    return QueryService(index=service_index)


class TestLadderConstruction:
    def test_full_ladder_from_index(self, service):
        assert service.tiers == ["QHL", "CSP-2Hop", "SkyDijkstra"]

    def test_network_only_service_is_index_free(self, service_grid):
        service = QueryService(network=service_grid)
        assert service.tiers == ["SkyDijkstra"]
        s, t, budget = QUERIES[0]
        result = service.query(s, t, budget)
        assert result.pair() == ground_truth(service_grid, s, t, budget)

    def test_needs_some_backend(self):
        with pytest.raises(ValueError):
            QueryService()

    def test_unknown_tier_rejected(self, service_index):
        with pytest.raises(ValueError):
            QueryService(
                index=service_index,
                config=ServiceConfig(tiers=("QHL", "Oracle")),
            )

    def test_unloadable_index_with_no_fallback_raises_typed(self, tmp_path):
        from repro.exceptions import SerializationError

        # No network, no engines: degradation is impossible, so the
        # load failure surfaces as its typed error, not a ValueError.
        with pytest.raises(SerializationError):
            QueryService(index_path=str(tmp_path / "nope.idx"))

    def test_missing_index_path_degrades_not_dies(self, service_grid,
                                                  tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            service = QueryService(
                index_path=str(tmp_path / "nope.idx"),
                network=service_grid,
            )
        assert service.index_load_error is not None
        assert service.tiers == ["SkyDijkstra"]
        s, t, budget = QUERIES[0]
        assert service.query(s, t, budget).pair() == ground_truth(
            service_grid, s, t, budget
        )
        metric = registry.get("service_index_load_failures_total")
        assert metric is not None and metric.value == 1


class TestFallback:
    def test_healthy_service_answers_via_qhl(self, service, service_grid):
        for s, t, budget in QUERIES:
            result = service.query(s, t, budget)
            assert result.engine == "QHL"
            assert result.pair() == ground_truth(service_grid, s, t, budget)

    def test_single_tier_fault_falls_back_correctly(
        self, service, service_grid
    ):
        injector = FaultInjector()
        injector.fail(
            "engine-query", exc=RuntimeError, times=1,
            match={"engine": "QHL"},
        )
        s, t, budget = QUERIES[0]
        with use_injector(injector):
            result = service.query(s, t, budget)
        assert result.engine == "CSP-2Hop"
        assert result.pair() == ground_truth(service_grid, s, t, budget)

    def test_double_fault_reaches_the_last_resort(
        self, service, service_grid
    ):
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=1,
                      match={"engine": "QHL"})
        injector.fail("engine-query", exc=ReproError, times=1,
                      match={"engine": "CSP-2Hop"})
        s, t, budget = QUERIES[1]
        with use_injector(injector):
            result = service.query(s, t, budget)
        assert result.engine == "SkyDijkstra"
        assert result.pair() == ground_truth(service_grid, s, t, budget)

    def test_all_tiers_failing_raises_typed_error(self, service):
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=None)
        with use_injector(injector):
            with pytest.raises(ServiceUnavailableError) as excinfo:
                service.query(*QUERIES[0])
        assert isinstance(excinfo.value.last_error, RuntimeError)

    def test_malformed_query_fails_fast_not_down_the_ladder(self, service):
        with pytest.raises(QueryError):
            service.query(0, 10_000, 250)

    def test_fallback_metrics_recorded(self, service):
        registry = MetricsRegistry()
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=1,
                      match={"engine": "QHL"})
        with use_registry(registry), use_injector(injector):
            service.query(*QUERIES[0])
        fallback = registry.get(
            "service_fallback_total",
            {"from": "QHL", "to": "CSP-2Hop", "reason": "RuntimeError"},
        )
        assert fallback is not None and fallback.value == 1
        answered = registry.get("service_queries_total",
                                {"tier": "CSP-2Hop"})
        assert answered is not None and answered.value == 1


class TestBreakerIntegration:
    def _failing_service(self, service_index, fake_clock):
        return QueryService(
            index=service_index,
            config=ServiceConfig(
                breaker_failure_threshold=2, breaker_reset_s=10.0
            ),
            clock=fake_clock,
        )

    def test_consecutive_failures_open_the_tier(
        self, service_index, service_grid, fake_clock
    ):
        service = self._failing_service(service_index, fake_clock)
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=None,
                      match={"engine": "QHL"})
        s, t, budget = QUERIES[0]
        with use_injector(injector):
            service.query(s, t, budget)
            service.query(s, t, budget)
            assert service.breaker("QHL").state == "open"
            # Breaker open: QHL is skipped, so only CSP-2Hop fires.
            before = injector.calls("engine-query")
            result = service.query(s, t, budget)
            assert injector.calls("engine-query") == before + 1
            assert result.engine == "CSP-2Hop"
        assert result.pair() == ground_truth(service_grid, s, t, budget)

    def test_breaker_half_opens_and_recovers(
        self, service_index, fake_clock
    ):
        service = self._failing_service(service_index, fake_clock)
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=2,
                      match={"engine": "QHL"})
        s, t, budget = QUERIES[0]
        with use_injector(injector):
            service.query(s, t, budget)
            service.query(s, t, budget)
            assert service.breaker("QHL").state == "open"
            fake_clock.advance(10.5)
            # Probe succeeds (the fault schedule is exhausted): closed.
            result = service.query(s, t, budget)
        assert result.engine == "QHL"
        assert service.breaker("QHL").state == "closed"

    def test_breaker_transitions_are_counted(
        self, service_index, fake_clock
    ):
        registry = MetricsRegistry()
        service = self._failing_service(service_index, fake_clock)
        injector = FaultInjector()
        injector.fail("engine-query", exc=RuntimeError, times=2,
                      match={"engine": "QHL"})
        with use_registry(registry), use_injector(injector):
            service.query(*QUERIES[0])
            service.query(*QUERIES[0])
        opened = registry.get(
            "service_breaker_transitions_total",
            {"tier": "QHL", "state": "open"},
        )
        assert opened is not None and opened.value == 1


class TestHarnessIntegration:
    def test_service_runs_under_the_workload_harness(
        self, service, service_grid
    ):
        from repro.instrument import run_workload
        from repro.types import CSPQuery

        queries = [CSPQuery(s, t, b) for s, t, b in QUERIES]
        report = run_workload(service, queries, "svc")
        assert report.num_queries == len(QUERIES)
        assert report.failed == 0
        assert report.feasible == len(QUERIES)
