"""Crash-safe writes, the corruption matrix, and load retries."""

import gzip
import os
import pickle
import random
import sys

import pytest

from repro.exceptions import SerializationError
from repro.service import FaultInjector, use_injector
from repro.storage import (
    load_compact_index,
    load_index,
    load_index_with_retry,
    save_compact_index,
    save_index,
)
from repro.storage.serialize import (
    COMPACT_MAGIC,
    MAGIC,
    _dumps_payload,
    _RECURSION_LIMIT,
)

SAVERS = {"full": save_index, "compact": save_compact_index}
LOADERS = {"full": load_index, "compact": load_compact_index}


def no_tmp_litter(directory):
    return [n for n in os.listdir(directory) if ".tmp." in n] == []


# ----------------------------------------------------------------------
# Kill safety: a fault at any write stage never corrupts the target.
# ----------------------------------------------------------------------
class TestKillSafety:
    @pytest.mark.parametrize("fmt", ["full", "compact"])
    @pytest.mark.parametrize("stage", ["write", "fsync", "replace"])
    def test_interrupted_first_save_leaves_nothing(
        self, service_index, tmp_path, fmt, stage
    ):
        path = str(tmp_path / "victim.idx")
        injector = FaultInjector()
        injector.fail("save-index", exc=OSError, match={"stage": stage})
        with use_injector(injector):
            with pytest.raises(OSError):
                SAVERS[fmt](service_index, path)
        assert not os.path.exists(path)
        assert no_tmp_litter(tmp_path)

    @pytest.mark.parametrize("fmt", ["full", "compact"])
    @pytest.mark.parametrize("stage", ["write", "fsync", "replace"])
    def test_interrupted_resave_keeps_the_old_file(
        self, service_index, service_grid, tmp_path, fmt, stage
    ):
        path = str(tmp_path / "victim.idx")
        SAVERS[fmt](service_index, path)
        with open(path, "rb") as f:
            before = f.read()
        injector = FaultInjector()
        injector.fail("save-index", exc=OSError, match={"stage": stage})
        with use_injector(injector):
            with pytest.raises(OSError):
                SAVERS[fmt](service_index, path)
        with open(path, "rb") as f:
            assert f.read() == before
        assert no_tmp_litter(tmp_path)
        # The survivor is not just byte-identical but fully loadable.
        loaded = LOADERS[fmt](path)
        assert loaded.query(0, 63, 250).pair() == service_index.query(
            0, 63, 250
        ).pair()

    def test_save_creates_missing_directories(self, service_index, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "x.idx")
        save_index(service_index, path)
        assert os.path.exists(path)


# ----------------------------------------------------------------------
# The corruption matrix, for both on-disk formats.
# ----------------------------------------------------------------------
def _write_envelope(path, envelope, fmt):
    data = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    if fmt == "compact":
        data = gzip.compress(data)
    with open(path, "wb") as f:
        f.write(data)


@pytest.fixture(scope="module")
def saved(service_index, tmp_path_factory):
    """One pristine save per format, reused by the whole matrix."""
    root = tmp_path_factory.mktemp("pristine")
    paths = {}
    for fmt, saver in SAVERS.items():
        path = str(root / f"{fmt}.idx")
        saver(service_index, path)
        paths[fmt] = path
    return paths


@pytest.mark.parametrize("fmt", ["full", "compact"])
class TestCorruptionMatrix:
    def _corrupt_copy(self, saved, tmp_path, fmt, mutate):
        with open(saved[fmt], "rb") as f:
            data = bytearray(f.read())
        path = str(tmp_path / f"corrupt-{fmt}.idx")
        with open(path, "wb") as f:
            f.write(mutate(data))
        return path

    def test_truncated_file(self, saved, tmp_path, fmt):
        path = self._corrupt_copy(
            saved, tmp_path, fmt, lambda d: d[: len(d) // 2]
        )
        with pytest.raises(SerializationError):
            LOADERS[fmt](path)

    def test_flipped_byte(self, saved, tmp_path, fmt):
        def flip(data):
            data[int(len(data) * 0.6)] ^= 0xFF
            return data

        path = self._corrupt_copy(saved, tmp_path, fmt, flip)
        with pytest.raises(SerializationError):
            LOADERS[fmt](path)

    def test_wrong_magic(self, saved, tmp_path, fmt):
        path = str(tmp_path / "magic.idx")
        _write_envelope(
            path,
            {"magic": "definitely-not-an-index", "version": 2,
             "checksum": "0" * 64, "payload": b""},
            fmt,
        )
        with pytest.raises(SerializationError, match="is not a"):
            LOADERS[fmt](path)

    def test_future_version(self, saved, tmp_path, fmt):
        magic = MAGIC if fmt == "full" else COMPACT_MAGIC
        path = str(tmp_path / "future.idx")
        _write_envelope(
            path,
            {"magic": magic, "version": 999,
             "checksum": "0" * 64, "payload": b""},
            fmt,
        )
        with pytest.raises(SerializationError, match="version 999"):
            LOADERS[fmt](path)

    def test_empty_file(self, saved, tmp_path, fmt):
        path = str(tmp_path / "empty.idx")
        open(path, "wb").close()
        with pytest.raises(SerializationError):
            LOADERS[fmt](path)

    def test_directory_instead_of_file(self, saved, tmp_path, fmt):
        path = str(tmp_path / "a-directory")
        os.mkdir(path)
        with pytest.raises(SerializationError, match="directory"):
            LOADERS[fmt](path)

    def test_every_matrix_error_message_names_the_path(
        self, saved, tmp_path, fmt
    ):
        path = str(tmp_path / "named.idx")
        open(path, "wb").close()
        with pytest.raises(SerializationError, match="named.idx"):
            LOADERS[fmt](path)


# ----------------------------------------------------------------------
# Checksums and format versions.
# ----------------------------------------------------------------------
class TestChecksumAndVersions:
    def test_checksum_mismatch_names_both_digests(
        self, saved, tmp_path
    ):
        with open(saved["full"], "rb") as f:
            envelope = pickle.load(f)
        envelope["checksum"] = "0" * 64
        path = str(tmp_path / "badsum.idx")
        _write_envelope(path, envelope, "full")
        with pytest.raises(SerializationError, match="checksum"):
            load_index(path)
        # The payload itself is intact, so skipping verification loads.
        index = load_index(path, verify_checksum=False)
        assert index.query(0, 63, 250).feasible

    def test_compact_checksum_mismatch(self, saved, tmp_path):
        with gzip.open(saved["compact"], "rb") as f:
            envelope = pickle.load(f)
        envelope["checksum"] = "0" * 64
        path = str(tmp_path / "badsum.cidx")
        _write_envelope(path, envelope, "compact")
        with pytest.raises(SerializationError, match="checksum"):
            load_compact_index(path)
        index = load_compact_index(path, verify_checksum=False)
        assert index.query(0, 63, 250).feasible

    def test_v1_full_file_still_loads(self, service_index, tmp_path):
        # A version-1 file keeps its fields inline, with no checksum.
        path = str(tmp_path / "v1.idx")
        _write_envelope(
            path,
            {"magic": MAGIC, "version": 1, "index": service_index},
            "full",
        )
        loaded = load_index(path)
        assert loaded.query(0, 63, 250).pair() == service_index.query(
            0, 63, 250
        ).pair()

    def test_v1_compact_file_still_loads(self, service_index, tmp_path):
        from repro.storage.compact import pack_labels

        tree = service_index.tree
        path = str(tmp_path / "v1.cidx")
        _write_envelope(
            path,
            {
                "magic": COMPACT_MAGIC,
                "version": 1,
                "num_vertices": tree.num_vertices,
                "edges": list(service_index.network.edges()),
                "order": list(tree.order),
                "bags": {
                    v: list(tree.bag[v]) for v in range(tree.num_vertices)
                },
                "labels": pack_labels(service_index.labels),
                "label_build_seconds": 0.0,
                "conditions": dict(service_index.pruning._conditions),
                "pruning_build_seconds": 0.0,
            },
            "compact",
        )
        loaded = load_compact_index(path)
        assert loaded.query(0, 63, 250).pair() == service_index.query(
            0, 63, 250
        ).pair()


# ----------------------------------------------------------------------
# Retrying loader.
# ----------------------------------------------------------------------
class TestLoadWithRetry:
    def test_transient_errors_retried_with_backoff(
        self, saved, service_index
    ):
        delays = []
        injector = FaultInjector()
        injector.fail("index-load", exc=OSError, times=2)
        with use_injector(injector):
            index = load_index_with_retry(
                saved["full"], attempts=3,
                sleep=delays.append, rng=random.Random(0),
            )
        assert index.query(0, 63, 250).pair() == service_index.query(
            0, 63, 250
        ).pair()
        assert len(delays) == 2
        # delay_i = min(0.05 * 2**i, 1.0) * (1 + 0.25 * U[0,1)).
        assert 0.05 <= delays[0] <= 0.0625
        assert 0.10 <= delays[1] <= 0.1250

    def test_jitter_is_deterministic_under_injected_clock(self, saved):
        # With a FaultInjector clock installed (the chaos-test setup),
        # the default rng is seeded: two identical runs see identical
        # jittered backoff sequences, and they match random.Random(0).
        runs = []
        for _ in range(2):
            delays = []
            injector = FaultInjector(clock=lambda: 0.0)
            injector.fail("index-load", exc=OSError, times=2)
            with use_injector(injector):
                load_index_with_retry(
                    saved["full"], attempts=3, sleep=delays.append
                )
            runs.append(delays)
        assert runs[0] == runs[1]
        rng = random.Random(0)
        expected = [
            min(0.05 * 2**i, 1.0) * (1.0 + 0.25 * rng.random())
            for i in range(2)
        ]
        assert runs[0] == pytest.approx(expected)

    def test_backoff_is_capped(self, saved):
        delays = []
        injector = FaultInjector()
        injector.fail("index-load", exc=OSError, times=None)
        with use_injector(injector):
            with pytest.raises(SerializationError, match="5 attempts"):
                load_index_with_retry(
                    saved["full"], attempts=5, base_delay=0.05,
                    max_delay=0.1, jitter=0.0, sleep=delays.append,
                )
        assert delays == [0.05, 0.1, 0.1, 0.1]

    def test_exhaustion_wraps_the_last_oserror(self, saved):
        injector = FaultInjector()
        injector.fail("index-load", exc=OSError("disk went away"),
                      times=None)
        with use_injector(injector):
            with pytest.raises(SerializationError) as excinfo:
                load_index_with_retry(
                    saved["full"], attempts=2, sleep=lambda _s: None
                )
        assert isinstance(excinfo.value.__cause__, OSError)
        assert "disk went away" in str(excinfo.value)

    def test_corruption_is_permanent_not_retried(self, tmp_path):
        path = str(tmp_path / "corrupt.idx")
        with open(path, "wb") as f:
            f.write(b"not an index at all")
        sleeps = []
        with pytest.raises(SerializationError):
            load_index_with_retry(path, attempts=5, sleep=sleeps.append)
        assert sleeps == []  # permanent failure: no backoff, no retry

    def test_compact_flag_routes_to_the_compact_loader(
        self, saved, service_index
    ):
        index = load_index_with_retry(saved["compact"], compact=True)
        assert index.query(0, 63, 250).pair() == service_index.query(
            0, 63, 250
        ).pair()

    def test_rejects_non_positive_attempts(self, saved):
        with pytest.raises(ValueError):
            load_index_with_retry(saved["full"], attempts=0)


# ----------------------------------------------------------------------
# Recursion-limit cap (the interpreter-crash guard).
# ----------------------------------------------------------------------
class TestRecursionCap:
    def test_cap_is_bounded(self):
        # The point of the cap: deep provenance must surface as a
        # catchable error, not exhaust the C stack.
        assert _RECURSION_LIMIT <= 20_000

    def test_too_deep_payload_raises_serialization_error(self):
        deep = None
        for _ in range(_RECURSION_LIMIT + 5_000):
            deep = (deep,)
        with pytest.raises(SerializationError, match="compact"):
            _dumps_payload(deep, "test payload")

    def test_limit_restored_after_save(self, service_index, tmp_path):
        before = sys.getrecursionlimit()
        save_index(service_index, str(tmp_path / "x.idx"))
        assert sys.getrecursionlimit() == before
