"""The degradation ladder over a live :class:`EpochManager`.

When the update backlog grows past ``max_update_backlog``, the labeled
tiers are serving an epoch that lags the acknowledged metric state, so
the ladder sheds them and answers from the index-free tier on the
*live* network — fresh answers at search latency instead of fast
answers at unbounded staleness.
"""

from __future__ import annotations

import pytest

from repro.baselines import constrained_dijkstra
from repro.core import random_index_queries
from repro.dynamic import DynamicQHLIndex, EpochManager, UpdateConfig
from repro.exceptions import UpdateFailedError
from repro.graph import grid_network
from repro.observability.metrics import MetricsRegistry, use_registry
from repro.service import (
    FaultInjector,
    QueryService,
    ServiceConfig,
    use_injector,
)

QUERY = (0, 63, 250)

CONFIG = UpdateConfig(
    audit_on_publish=False, reap_stale=False, replay_on_start=False
)


@pytest.fixture()
def manager(tmp_path):
    g = grid_network(8, 8, seed=1)
    queries = random_index_queries(g, 150, seed=1)
    dyn = DynamicQHLIndex.build(g, index_queries=queries, seed=0)
    return EpochManager(dyn, str(tmp_path / "journal"), CONFIG)


def live_truth(manager, s, t, budget):
    return constrained_dijkstra(
        manager.live_network(), s, t, budget, want_path=False
    ).pair()


class TestEpochBackedService:
    def test_serves_from_the_current_epoch(self, manager):
        service = QueryService(epoch_manager=manager)
        s, t, budget = QUERY
        result = service.query(s, t, budget)
        assert result.engine == "QHL"
        assert result.pair() == live_truth(manager, s, t, budget)

    def test_publish_is_picked_up_without_rebuilding(self, manager):
        service = QueryService(epoch_manager=manager)
        s, t, budget = QUERY
        before = service.query(s, t, budget).pair()
        manager.apply([(3, 999.0, 999.0)])
        result = service.query(s, t, budget)
        assert result.engine == "QHL"
        assert result.pair() == live_truth(manager, s, t, budget)
        # And the service noticed the new epoch, not a stale snapshot.
        assert manager.epoch.id == 1
        del before  # the pair may or may not change; exactness is the claim

    def _force_backlog(self, manager, deltas):
        injector = FaultInjector()
        injector.fail("update-publish", exc=RuntimeError, times=len(deltas))
        with use_injector(injector):
            for delta in deltas:
                with pytest.raises(UpdateFailedError):
                    manager.apply([delta])

    def test_backlog_past_threshold_sheds_to_the_live_network(
        self, manager
    ):
        service = QueryService(
            epoch_manager=manager,
            config=ServiceConfig(max_update_backlog=1),
        )
        s, t, budget = QUERY
        self._force_backlog(manager, [(3, 999.0, 999.0), (9, 1.0, 1.0)])
        assert manager.backlog() == 2
        registry = MetricsRegistry()
        with use_registry(registry):
            result = service.query(s, t, budget)
        # Shed past the labeled tiers onto the pending-inclusive view.
        assert result.engine == "SkyDijkstra"
        assert result.pair() == live_truth(manager, s, t, budget)
        assert registry.counter(
            "service_fallback_total",
            {"from": "QHL", "to": "CSP-2Hop", "reason": "update-backlog"},
        ).value == 1

    def test_backlog_at_threshold_does_not_shed(self, manager):
        service = QueryService(
            epoch_manager=manager,
            config=ServiceConfig(max_update_backlog=1),
        )
        self._force_backlog(manager, [(3, 999.0, 999.0)])
        assert manager.backlog() == 1
        s, t, budget = QUERY
        assert service.query(s, t, budget).engine == "QHL"

    def test_replay_restores_the_fast_tier(self, manager):
        service = QueryService(
            epoch_manager=manager,
            config=ServiceConfig(max_update_backlog=0),
        )
        s, t, budget = QUERY
        self._force_backlog(manager, [(3, 999.0, 999.0)])
        assert service.query(s, t, budget).engine == "SkyDijkstra"
        manager.replay()
        result = service.query(s, t, budget)
        assert result.engine == "QHL"
        assert result.pair() == live_truth(manager, s, t, budget)

    def test_shed_without_skydijkstra_tier_still_answers(self, manager):
        # A labeled-only ladder has nowhere to shed to; backlog past
        # the threshold must degrade to lagging-but-correct answers,
        # not a ServiceUnavailableError outage.
        service = QueryService(
            epoch_manager=manager,
            config=ServiceConfig(
                tiers=("QHL", "CSP-2Hop"), max_update_backlog=0
            ),
        )
        self._force_backlog(manager, [(3, 999.0, 999.0)])
        assert manager.backlog() == 1
        s, t, budget = QUERY
        result = service.query(s, t, budget)
        assert result.engine == "QHL"

    def test_no_threshold_never_sheds(self, manager):
        service = QueryService(epoch_manager=manager)
        self._force_backlog(manager, [(3, 999.0, 999.0), (9, 1.0, 1.0)])
        s, t, budget = QUERY
        # Unbounded staleness was asked for: the fast tier keeps serving
        # the (lagging) epoch, still exactly for that epoch's metrics.
        assert service.query(s, t, budget).engine == "QHL"
