"""Unit tests for skyline entries and path expansion."""

import pytest

from repro.exceptions import ReproError
from repro.skyline import (
    edge_entry,
    expand,
    join_entry,
    path_of_pairs,
    zero_entry,
)


class TestConstruction:
    def test_edge_entry_pair(self):
        assert edge_entry(3, 4, 0, 1)[:2] == (3, 4)

    def test_edge_entry_without_provenance(self):
        assert edge_entry(3, 4, 0, 1, with_prov=False)[2] is None

    def test_join_adds_metrics(self):
        a = edge_entry(3, 4, 0, 1)
        b = edge_entry(5, 6, 1, 2)
        assert join_entry(a, b, mid=1)[:2] == (8, 10)

    def test_join_drops_provenance_when_child_lacks_it(self):
        a = edge_entry(3, 4, 0, 1, with_prov=False)
        b = edge_entry(5, 6, 1, 2)
        assert join_entry(a, b, mid=1)[2] is None

    def test_zero_entry_is_identity(self):
        z = zero_entry(0)
        e = edge_entry(3, 4, 0, 1)
        assert join_entry(z, e, mid=0)[:2] == (3, 4)


class TestExpansion:
    def test_edge_forward(self):
        assert expand(edge_entry(1, 1, 4, 7), 4, 7) == [4, 7]

    def test_edge_reversed(self):
        assert expand(edge_entry(1, 1, 4, 7), 7, 4) == [7, 4]

    def test_zero(self):
        assert expand(zero_entry(3), 3, 3) == [3]

    def test_join_forward(self):
        a = edge_entry(1, 1, 0, 1)
        b = edge_entry(1, 1, 1, 2)
        assert expand(join_entry(a, b, mid=1), 0, 2) == [0, 1, 2]

    def test_join_reversed(self):
        a = edge_entry(1, 1, 0, 1)
        b = edge_entry(1, 1, 1, 2)
        assert expand(join_entry(a, b, mid=1), 2, 0) == [2, 1, 0]

    def test_join_with_reversed_children(self):
        # Children built in the "wrong" direction still orient correctly.
        a = edge_entry(1, 1, 1, 0)  # built as (1, 0)
        b = edge_entry(1, 1, 2, 1)  # built as (2, 1)
        assert expand(join_entry(a, b, mid=1), 0, 2) == [0, 1, 2]

    def test_nested_joins(self):
        e01 = edge_entry(1, 1, 0, 1)
        e12 = edge_entry(1, 1, 1, 2)
        e23 = edge_entry(1, 1, 2, 3)
        left = join_entry(e01, e12, mid=1)
        full = join_entry(left, e23, mid=2)
        assert expand(full, 0, 3) == [0, 1, 2, 3]
        assert expand(full, 3, 0) == [3, 2, 1, 0]

    def test_missing_provenance_raises(self):
        with pytest.raises(ReproError):
            expand((1, 1, None), 0, 1)

    def test_wrong_endpoints_raise(self):
        with pytest.raises(ReproError):
            expand(edge_entry(1, 1, 0, 1), 0, 5)

    def test_anonymous_zero_cannot_expand(self):
        with pytest.raises(ReproError):
            expand(zero_entry(), 0, 0)


class TestHelpers:
    def test_path_of_pairs(self):
        entries = [edge_entry(1, 2, 0, 1), edge_entry(3, 4, 1, 2)]
        assert path_of_pairs(entries) == [(1, 2), (3, 4)]
