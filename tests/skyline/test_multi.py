"""Unit tests for the multi-constraint skyline algebra."""

from repro.skyline import m_best_under, m_dominates, m_join, m_skyline


class TestMDominates:
    def test_strictly_better(self):
        assert m_dominates((1, (1, 1)), (2, (2, 2)))

    def test_better_on_weight_only(self):
        assert m_dominates((1, (2, 2)), (2, (2, 2)))

    def test_better_on_one_cost_only(self):
        assert m_dominates((2, (1, 2)), (2, (2, 2)))

    def test_equal_does_not_dominate(self):
        assert not m_dominates((2, (2, 2)), (2, (2, 2)))

    def test_tradeoff_does_not_dominate(self):
        assert not m_dominates((1, (9, 1)), (2, (1, 9)))


class TestMSkyline:
    def test_empty(self):
        assert m_skyline([]) == []

    def test_removes_dominated(self):
        sky = m_skyline([(1, (1, 1)), (2, (2, 2))])
        assert sky == [(1, (1, 1))]

    def test_keeps_pareto_front(self):
        pool = [(1, (9, 1)), (2, (1, 9)), (3, (5, 5)), (4, (6, 6))]
        sky = m_skyline(pool)
        assert (4, (6, 6)) not in sky
        assert len(sky) == 3

    def test_deduplicates(self):
        assert m_skyline([(1, (2, 3)), (1, (2, 3))]) == [(1, (2, 3))]

    def test_matches_bruteforce(self):
        pool = [
            (1, (5, 5)), (2, (4, 4)), (3, (3, 6)), (2, (6, 3)),
            (5, (1, 1)), (4, (2, 5)),
        ]
        sky = set(m_skyline(pool))
        brute = {
            p for p in pool
            if not any(m_dominates(q, p) for q in pool if q != p)
        }
        assert sky == brute


class TestMJoin:
    def test_adds_componentwise(self):
        got = m_join([(1, (2, 3))], [(4, (5, 6))])
        assert got == [(5, (7, 9))]

    def test_budget_filter(self):
        got = m_join(
            [(1, (2, 3))], [(4, (5, 6))], budgets=(7, 8)
        )
        assert got == []  # costs (7, 9) violate the second budget

    def test_result_is_pareto(self):
        a = [(1, (9, 1)), (9, (1, 9))]
        b = [(1, (1, 1))]
        got = m_join(a, b)
        assert got == m_skyline(got)


class TestMBestUnder:
    def test_picks_min_weight_feasible(self):
        front = [(1, (9, 9)), (5, (2, 2)), (3, (5, 5))]
        assert m_best_under(front, (6, 6)) == (3, (5, 5))

    def test_none_when_infeasible(self):
        assert m_best_under([(1, (9, 9))], (2, 2)) is None

    def test_empty_front(self):
        assert m_best_under([], (5, 5)) is None
