"""Property-based tests (hypothesis) for the skyline algebra.

These invariants are what the whole index build rests on, so they get the
heaviest fuzzing in the suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skyline import (
    best_under,
    dominates,
    filter_under,
    is_canonical,
    join,
    m_dominates,
    m_join,
    m_skyline,
    merge,
    path_of_pairs,
    skyline_of,
)

pair = st.tuples(
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=50),
)
pairs = st.lists(pair, min_size=0, max_size=30)


def entries(ps):
    return [(w, c, None) for w, c in ps]


@given(pairs)
def test_skyline_is_canonical(ps):
    assert is_canonical(skyline_of(entries(ps)))


@given(pairs)
def test_skyline_members_come_from_input(ps):
    sky = set(path_of_pairs(skyline_of(entries(ps))))
    assert sky.issubset(set(ps))


@given(pairs)
def test_skyline_contains_every_undominated_pair(ps):
    sky = set(path_of_pairs(skyline_of(entries(ps))))
    for p in ps:
        if not any(dominates(q, p) for q in ps):
            assert p in sky


@given(pairs)
def test_skyline_dominates_all_input(ps):
    sky = path_of_pairs(skyline_of(entries(ps)))
    for p in ps:
        assert any(q == p or dominates(q, p) for q in sky)


@given(pairs)
def test_skyline_idempotent(ps):
    once = skyline_of(entries(ps))
    assert skyline_of(once) == once


@given(pairs, pairs)
def test_merge_equals_skyline_of_union(a, b):
    sa, sb = skyline_of(entries(a)), skyline_of(entries(b))
    assert merge(sa, sb) == skyline_of(sa + sb)


@given(pairs, pairs)
def test_merge_commutative(a, b):
    sa, sb = skyline_of(entries(a)), skyline_of(entries(b))
    assert path_of_pairs(merge(sa, sb)) == path_of_pairs(merge(sb, sa))


@given(pairs, pairs)
def test_join_is_skyline_of_all_sums(a, b):
    sa, sb = skyline_of(entries(a)), skyline_of(entries(b))
    got = path_of_pairs(join(sa, sb, mid=0))
    sums = [(x[0] + y[0], x[1] + y[1]) for x in sa for y in sb]
    assert got == path_of_pairs(skyline_of(entries(sums)))


@given(pairs, pairs, st.integers(min_value=1, max_value=100))
def test_join_budget_only_removes_over_budget(a, b, budget):
    sa, sb = skyline_of(entries(a)), skyline_of(entries(b))
    budgeted = path_of_pairs(join(sa, sb, mid=0, budget=budget))
    full = path_of_pairs(join(sa, sb, mid=0))
    feasible_full = [p for p in full if p[1] <= budget]
    # Everything the budgeted join returns is feasible, and every
    # feasible member of the full join survives (skyline of a subset can
    # only gain members, never lose feasible ones).
    assert all(p[1] <= budget for p in budgeted)
    assert set(feasible_full).issubset(set(budgeted))


@given(pairs, st.integers(min_value=1, max_value=60))
def test_filter_under_strictness(ps, theta):
    sky = skyline_of(entries(ps))
    kept = filter_under(sky, theta)
    assert all(e[1] < theta for e in kept)
    assert [e for e in sky if e[1] < theta] == kept


@given(pairs, st.integers(min_value=0, max_value=120))
def test_best_under_is_min_weight_feasible(ps, budget):
    sky = skyline_of(entries(ps))
    got = best_under(sky, budget)
    feasible = [e for e in sky if e[1] <= budget]
    if not feasible:
        assert got is None
    else:
        assert got[0] == min(e[0] for e in feasible)


# ----------------------------------------------------------------------
# Multi-constraint algebra
# ----------------------------------------------------------------------
m_entry = st.tuples(
    st.integers(min_value=1, max_value=30),
    st.tuples(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
    ),
)
m_entries = st.lists(m_entry, min_size=0, max_size=15)


@given(m_entries)
def test_m_skyline_is_pareto_front(es):
    sky = m_skyline(es)
    for p in sky:
        assert not any(m_dominates(q, p) for q in sky)
    for p in es:
        assert any(q == p or m_dominates(q, p) for q in sky)


@settings(max_examples=50)
@given(m_entries, m_entries)
def test_m_join_members_are_sums(a, b):
    sa, sb = m_skyline(a), m_skyline(b)
    sums = {
        (x[0] + y[0], tuple(xc + yc for xc, yc in zip(x[1], y[1])))
        for x in sa
        for y in sb
    }
    assert set(m_join(sa, sb)).issubset(sums)
