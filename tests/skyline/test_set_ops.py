"""Unit tests for skyline set operations."""

import pytest

from repro.skyline import (
    best_under,
    cartesian_entries,
    dominated_by_set,
    dominates,
    filter_under,
    is_canonical,
    join,
    merge,
    path_of_pairs,
    skyline_of,
    truncate,
)


def entries(pairs):
    return [(w, c, None) for w, c in pairs]


class TestDominates:
    def test_strictly_better(self):
        assert dominates((1, 1), (2, 2))

    def test_better_on_one_metric(self):
        assert dominates((1, 5), (2, 5))
        assert dominates((5, 1), (5, 2))

    def test_equal_does_not_dominate(self):
        assert not dominates((3, 3), (3, 3))

    def test_incomparable(self):
        assert not dominates((1, 9), (9, 1))
        assert not dominates((9, 1), (1, 9))

    def test_asymmetric(self):
        assert dominates((1, 1), (2, 2))
        assert not dominates((2, 2), (1, 1))


class TestSkylineOf:
    def test_empty(self):
        assert skyline_of([]) == []

    def test_single(self):
        assert path_of_pairs(skyline_of(entries([(3, 4)]))) == [(3, 4)]

    def test_removes_dominated(self):
        sky = skyline_of(entries([(1, 1), (2, 2), (3, 3)]))
        assert path_of_pairs(sky) == [(1, 1)]

    def test_keeps_incomparable_sorted_by_cost(self):
        sky = skyline_of(entries([(1, 9), (9, 1), (5, 5)]))
        assert path_of_pairs(sky) == [(9, 1), (5, 5), (1, 9)]

    def test_deduplicates_equal_pairs(self):
        sky = skyline_of(entries([(2, 3), (2, 3)]))
        assert path_of_pairs(sky) == [(2, 3)]

    def test_equal_cost_keeps_min_weight(self):
        sky = skyline_of(entries([(5, 3), (4, 3), (6, 3)]))
        assert path_of_pairs(sky) == [(4, 3)]

    def test_equal_weight_keeps_min_cost(self):
        sky = skyline_of(entries([(4, 5), (4, 3), (4, 9)]))
        assert path_of_pairs(sky) == [(4, 3)]

    def test_result_is_canonical(self):
        sky = skyline_of(entries([(3, 7), (8, 2), (5, 5), (4, 6), (9, 9)]))
        assert is_canonical(sky)

    def test_matches_bruteforce_definition(self):
        pool = [(3, 7), (8, 2), (5, 5), (4, 6), (9, 9), (5, 4), (2, 8)]
        sky = set(path_of_pairs(skyline_of(entries(pool))))
        brute = {
            p for p in pool
            if not any(dominates(q, p) for q in pool)
        }
        assert sky == brute


class TestIsCanonical:
    def test_empty_and_single(self):
        assert is_canonical([])
        assert is_canonical(entries([(3, 3)]))

    def test_valid_chain(self):
        assert is_canonical(entries([(9, 1), (5, 5), (1, 9)]))

    def test_unsorted_rejected(self):
        assert not is_canonical(entries([(5, 5), (9, 1)]))

    def test_dominated_member_rejected(self):
        assert not is_canonical(entries([(1, 1), (2, 2)]))

    def test_equal_cost_rejected(self):
        assert not is_canonical(entries([(5, 3), (4, 3)]))


class TestMerge:
    def test_with_empty(self):
        a = skyline_of(entries([(2, 2)]))
        assert merge(a, []) == a
        assert merge([], a) == a

    def test_disjoint_chains(self):
        a = skyline_of(entries([(9, 1), (5, 5)]))
        b = skyline_of(entries([(7, 3), (1, 9)]))
        merged = merge(a, b)
        assert path_of_pairs(merged) == [(9, 1), (7, 3), (5, 5), (1, 9)]

    def test_removes_cross_dominated(self):
        a = skyline_of(entries([(5, 5)]))
        b = skyline_of(entries([(4, 4)]))
        assert path_of_pairs(merge(a, b)) == [(4, 4)]

    def test_equals_skyline_of_union(self):
        a = skyline_of(entries([(9, 1), (6, 4), (2, 9)]))
        b = skyline_of(entries([(8, 2), (5, 5), (1, 12)]))
        assert merge(a, b) == skyline_of(a + b)


class TestJoin:
    def test_empty_operand(self):
        assert join([], entries([(1, 1)]), mid=0) == []
        assert join(entries([(1, 1)]), [], mid=0) == []

    def test_singletons(self):
        got = join(entries([(2, 3)]), entries([(4, 5)]), mid=7)
        assert path_of_pairs(got) == [(6, 8)]

    def test_is_skyline_of_cartesian(self):
        a = skyline_of(entries([(9, 1), (5, 5), (1, 9)]))
        b = skyline_of(entries([(7, 2), (3, 6)]))
        got = join(a, b, mid=0)
        all_sums = [
            (x[0] + y[0], x[1] + y[1], None) for x in a for y in b
        ]
        assert got == skyline_of(all_sums)

    def test_budget_drops_expensive_pairs(self):
        a = skyline_of(entries([(9, 1), (1, 9)]))
        b = skyline_of(entries([(9, 1), (1, 9)]))
        got = join(a, b, mid=0, budget=5)
        assert path_of_pairs(got) == [(18, 2)]


class TestCartesian:
    def test_keeps_dominated_members(self):
        a = skyline_of(entries([(9, 1), (1, 9)]))
        b = skyline_of(entries([(9, 1), (1, 9)]))
        got = cartesian_entries(a, b, mid=0)
        assert len(got) == 4  # includes the dominated (10, 10) twice

    def test_sorted_by_cost_then_weight(self):
        a = skyline_of(entries([(9, 1), (1, 9)]))
        b = skyline_of(entries([(5, 5)]))
        got = path_of_pairs(cartesian_entries(a, b, mid=0))
        assert got == sorted(got, key=lambda p: (p[1], p[0]))


class TestFilterAndLookup:
    def setup_method(self):
        self.sky = skyline_of(
            entries([(9, 1), (7, 3), (5, 5), (3, 7), (1, 9)])
        )

    def test_filter_under_is_strict(self):
        # P^theta uses c(p) < theta (paper, before Theorem 1).
        got = path_of_pairs(filter_under(self.sky, 5))
        assert got == [(9, 1), (7, 3)]

    def test_filter_under_all(self):
        assert filter_under(self.sky, 100) == self.sky

    def test_filter_under_none(self):
        assert filter_under(self.sky, 1) == []

    def test_best_under_exact_budget(self):
        assert best_under(self.sky, 5)[:2] == (5, 5)

    def test_best_under_between_costs(self):
        assert best_under(self.sky, 6)[:2] == (5, 5)

    def test_best_under_too_small(self):
        assert best_under(self.sky, 0.5) is None

    def test_best_under_huge_budget_returns_min_weight(self):
        assert best_under(self.sky, 1000)[:2] == (1, 9)

    def test_dominated_by_set(self):
        assert dominated_by_set((8, 4, None), self.sky)
        assert not dominated_by_set((9, 1, None), self.sky)  # equal member
        assert not dominated_by_set((10, 0.5, None), self.sky)


class TestTruncate:
    def test_noop_when_small(self):
        sky = skyline_of(entries([(9, 1), (5, 5), (1, 9)]))
        assert truncate(sky, 5) == sky

    def test_keeps_extremes(self):
        sky = skyline_of(entries([(10 - i, i) for i in range(1, 10)]))
        cut = truncate(sky, 3)
        assert cut[0] == sky[0]
        assert cut[-1] == sky[-1]
        assert len(cut) == 3

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            truncate(entries([(1, 1)]), 1)
