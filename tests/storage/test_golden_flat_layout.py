"""Golden pin of the flat column layout for the paper worked example.

``tests/golden/paper_example_flat.json`` freezes the exact packed
representation of the Figure 1 index — offset tables, hub lists, the
cost-sorted weight/cost columns, and the sha256 of each column's raw
bytes as written into the version-3 envelope.  Any drift in packing
(set ordering, offset arithmetic, the float↔int restore convention) or
in the labels themselves shows up as a readable JSON diff instead of a
silent format break, complementing ``tests/golden/paper_example.json``
which pins the *answers* over the same build.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.storage import FlatLabelStore, pack_labels

GOLDEN_PATH = (
    Path(__file__).parent.parent / "golden" / "paper_example_flat.json"
)

COLUMNS = ("set_offsets", "hubs", "entry_offsets", "weights", "costs")


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def compact(paper_index):
    return pack_labels(paper_index.labels)


def test_offset_tables_match_pin(compact, golden):
    assert golden["num_vertices"] == compact.num_vertices
    assert list(compact.set_offsets) == golden["set_offsets"]
    assert list(compact.entry_offsets) == golden["entry_offsets"]


def test_hub_column_matches_pin(compact, golden):
    assert list(compact.hubs) == golden["hubs"]


def test_entry_columns_match_pin(compact, golden):
    restore = lambda x: int(x) if x.is_integer() else x  # noqa: E731
    assert [restore(w) for w in compact.weights] == golden["weights"]
    assert [restore(c) for c in compact.costs] == golden["costs"]


def test_column_bytes_match_pinned_digests(compact, golden):
    """The exact bytes the version-3 envelope serialises, per column."""
    for name in COLUMNS:
        digest = hashlib.sha256(getattr(compact, name).tobytes())
        assert digest.hexdigest() == golden["column_sha256"][name], (
            f"column {name} bytes drifted from the golden pin"
        )


def test_flat_store_round_trips_the_pinned_bytes(compact, golden):
    """FlatLabelStore.from_compact → to_compact preserves every byte."""
    store = FlatLabelStore.from_compact(compact)
    repacked = store.to_compact()
    for name in COLUMNS:
        digest = hashlib.sha256(getattr(repacked, name).tobytes())
        assert digest.hexdigest() == golden["column_sha256"][name]
