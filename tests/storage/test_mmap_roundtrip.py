"""The flat (version 3) envelope: byte identity, corruption, fork sharing.

The contract under test, from strongest to weakest:

1. **Byte identity** — pack → save → mmap-load → repack reproduces the
   exact ``pack_labels`` bytes, column for column.  The flat store *is*
   the serialized form; nothing is transformed on load.
2. **Corruption honesty** — truncations and bit flips anywhere (header,
   metadata, columns) raise the checksum/structure
   :class:`SerializationError` instead of returning garbage answers.
3. **Fork sharing** — a forked child answers queries from the parent's
   mapped index without re-deserializing (no load call, no column
   copies; the pages are the parent's).
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core import QHLIndex
from repro.core.flat import FlatIndex
from repro.exceptions import SerializationError
from repro.graph import random_connected_network
from repro.storage import (
    load_flat_index,
    pack_labels,
    save_flat_index,
)
from repro.storage.flatfile import _HEADER

COLUMNS = ("set_offsets", "hubs", "entry_offsets", "weights", "costs")


@pytest.fixture(scope="module")
def built():
    g = random_connected_network(30, 25, seed=14)
    return g, QHLIndex.build(g, num_index_queries=200, seed=14)


@pytest.fixture()
def saved(built, tmp_path):
    _g, index = built
    path = os.fspath(tmp_path / "index.qflat")
    save_flat_index(index, path)
    return index, path


class TestByteIdentity:
    def test_mmap_load_repacks_byte_identical(self, saved):
        index, path = saved
        original = pack_labels(index.labels)
        loaded = load_flat_index(path)
        repacked = loaded.labels.to_compact()
        for name in COLUMNS:
            assert (
                getattr(repacked, name).tobytes()
                == getattr(original, name).tobytes()
            ), f"column {name} drifted through the mmap round-trip"

    def test_resave_of_loaded_index_is_byte_identical(self, saved, tmp_path):
        _index, path = saved
        loaded = load_flat_index(path)
        second = os.fspath(tmp_path / "resaved.qflat")
        save_flat_index(loaded, second)
        with open(path, "rb") as a, open(second, "rb") as b:
            assert a.read() == b.read()

    def test_plain_read_load_matches_mmap_load(self, saved):
        _index, path = saved
        mapped = load_flat_index(path, use_mmap=True)
        copied = load_flat_index(path, use_mmap=False)
        for name in COLUMNS:
            assert (
                getattr(mapped.labels, name).tobytes()
                == getattr(copied.labels, name).tobytes()
            )

    def test_loaded_index_answers_match_object_index(self, built, saved):
        g, index = built
        _index, path = saved
        loaded = load_flat_index(path)
        obj = index.qhl_engine()
        flat = loaded.qhl_engine()
        import random

        rng = random.Random(3)
        for _ in range(50):
            s, t = rng.randrange(30), rng.randrange(30)
            c = rng.uniform(0, 40)
            a, b = obj.query(s, t, c), flat.query(s, t, c)
            assert (a.feasible, a.weight, a.cost) == (
                b.feasible, b.weight, b.cost,
            )


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError, match="does not exist"):
            load_flat_index(os.fspath(tmp_path / "nope.qflat"))

    def test_directory(self, tmp_path):
        with pytest.raises(SerializationError, match="directory"):
            load_flat_index(os.fspath(tmp_path))

    def test_foreign_file(self, tmp_path):
        path = os.fspath(tmp_path / "foreign.qflat")
        with open(path, "wb") as f:
            f.write(b"not a flat index" * 16)
        with pytest.raises(SerializationError, match="not a flat"):
            load_flat_index(path)

    def test_truncated_below_header(self, saved):
        _index, path = saved
        with open(path, "rb") as f:
            head = f.read(_HEADER.size // 2)
        with open(path, "wb") as f:
            f.write(head)
        with pytest.raises(SerializationError, match="truncated"):
            load_flat_index(path)

    def test_truncated_columns(self, saved):
        _index, path = saved
        data = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(data[: len(data) // 2])
        with pytest.raises(SerializationError, match="truncated|corrupt"):
            load_flat_index(path)

    @pytest.mark.parametrize(
        "region", ["metadata", "early-column", "last-byte"]
    )
    def test_bit_flip_fails_checksum(self, saved, region):
        _index, path = saved
        data = bytearray(open(path, "rb").read())
        offset = {
            "metadata": _HEADER.size + 8,
            "early-column": len(data) // 2,
            "last-byte": len(data) - 1,
        }[region]
        data[offset] ^= 0x40
        with open(path, "wb") as f:
            f.write(bytes(data))
        with pytest.raises(SerializationError, match="checksum"):
            load_flat_index(path)

    def test_bit_flip_in_stored_digest_fails_checksum(self, saved):
        _index, path = saved
        data = bytearray(open(path, "rb").read())
        data[_HEADER.size - 1] ^= 0x01  # last byte of the header digest
        with open(path, "wb") as f:
            f.write(bytes(data))
        with pytest.raises(SerializationError, match="checksum"):
            load_flat_index(path)

    def test_unsupported_version(self, saved):
        _index, path = saved
        data = bytearray(open(path, "rb").read())
        data[8] = 9  # version field (little-endian u32 after the magic)
        with open(path, "wb") as f:
            f.write(bytes(data))
        with pytest.raises(SerializationError, match="version"):
            load_flat_index(path)


class TestForkSharing:
    def test_forked_child_reads_parent_mapping(self, saved):
        """A child forked after the load answers from the parent's map.

        The child runs a query and repacks a column *without* calling
        ``load_flat_index`` itself — possible only because fork
        inherits the parent's mapped pages.  Platforms without fork
        skip (the mmap still loads; only the sharing claim needs fork).
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("requires the fork start method")
        _index, path = saved
        loaded = load_flat_index(path)
        expected = loaded.query(0, 29, 1000)
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(
            target=_child_probe, args=(loaded, queue)
        )
        proc.start()
        try:
            weight, cost, head = queue.get(timeout=30)
        finally:
            proc.join(timeout=30)
        assert (weight, cost) == (expected.weight, expected.cost)
        assert head == loaded.labels.costs.tobytes()[:64]

    def test_batch_workers_answer_from_mapped_index(self, saved):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("requires the fork start method")
        _index, path = saved
        loaded = load_flat_index(path)
        queries = [(0, 29, 1000.0), (1, 20, 500.0), (3, 7, 0.5)]
        sequential = loaded.query_many(queries, workers=0)
        fanned = loaded.query_many(queries, workers=2)
        for a, b in zip(sequential.results, fanned.results):
            assert (a.feasible, a.weight, a.cost) == (
                b.feasible, b.weight, b.cost,
            )


def _child_probe(index: FlatIndex, queue) -> None:
    result = index.query(0, 29, 1000)
    queue.put(
        (result.weight, result.cost, index.labels.costs.tobytes()[:64])
    )
