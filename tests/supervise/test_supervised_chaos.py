"""Chaos matrix: real SIGKILLs at every worker lifecycle stage.

The acceptance bar for worker supervision: killing any single worker —
at spawn, mid-chunk, or by wedging its heartbeat — costs a bounded
retry, never correctness.  Each leg runs a real supervised batch and
asserts exact results (identical to the sequential run), zero failure
rows, at most one requeued chunk per death, and one stitched trace in
which the truncated span is joined to its respawned successor.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.observability.metrics import MetricsRegistry, use_registry
from repro.observability.tracing import SpanTracer, use_tracer
from repro.perf.batch import _fork_context, execute_batch
from repro.service import FaultInjector, use_injector
from repro.supervise import SupervisionConfig

pytestmark = pytest.mark.skipif(
    _fork_context() is None, reason="fork start method unavailable"
)

QUERIES = [
    (s, t, budget)
    for s, t in ((0, 5), (2, 9), (7, 3), (1, 11), (4, 8), (6, 10))
    for budget in (9.0, 14.0, 21.0, 30.0)
]

FAST = SupervisionConfig(
    heartbeat_ms=20.0,
    stall_after_ms=300.0,
    backoff_base_s=0.005,
    backoff_max_s=0.05,
    max_task_retries=10,
    drain_grace_s=1.0,
)


class KillOnceEngine:
    """SIGKILL the first worker process to run a query (sentinel file)."""

    def __init__(self, inner, sentinel):
        self.inner, self.sentinel = inner, sentinel
        self.name = inner.name

    def query(self, source, target, budget, **kwargs):
        try:
            os.close(os.open(
                self.sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            ))
        except FileExistsError:
            pass
        else:
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.query(source, target, budget, **kwargs)


class SlowEngine:
    """Delay every query so a chunk outlasts the stall window."""

    def __init__(self, inner, delay_s):
        self.inner, self.delay_s = inner, delay_s
        self.name = inner.name

    def query(self, source, target, budget, **kwargs):
        time.sleep(self.delay_s)
        return self.inner.query(source, target, budget, **kwargs)


class PoisonPairEngine:
    """SIGKILL on one specific (source, target) pair, every time."""

    def __init__(self, inner, pair):
        self.inner, self.pair = inner, pair
        self.name = inner.name

    def query(self, source, target, budget, **kwargs):
        if (source, target) == self.pair:
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.query(source, target, budget, **kwargs)


def expected_pairs(engine):
    return [
        r.pair() for r in execute_batch(engine, QUERIES, workers=0).results
    ]


def truncated_spans(root):
    return [c for c in root.children if c.name == "worker.truncated"]


def assert_batch_exact(report, engine):
    assert report.failures == []
    assert [r.pair() for r in report.results] == expected_pairs(engine)


class TestKillMatrix:
    def test_kill_at_spawn(self, paper_index):
        # w0's first fork fails outright; the supervisor schedules a
        # respawn and the batch completes without losing a query.
        engine = paper_index.qhl_engine()
        injector = FaultInjector()
        injector.fail(
            "worker-spawn", exc=RuntimeError, times=1,
            match={"worker": "w0"},
        )
        registry = MetricsRegistry()
        with use_injector(injector), use_registry(registry):
            report = execute_batch(
                engine, QUERIES, workers=2,
                supervised=True, supervision=FAST,
            )
        assert_batch_exact(report, engine)
        assert registry.counter(
            "supervisor_deaths_total",
            {"worker": "w0", "reason": "spawn-failed"},
        ).value == 1
        assert registry.counter(
            "supervisor_restarts_total", {"worker": "w0"}
        ).value >= 1

    def test_kill_mid_chunk(self, paper_index, tmp_path):
        # A real SIGKILL mid-chunk: the chunk is requeued (split into
        # singletons), the worker respawns, and the stitched trace
        # shows the death joined to its successor pid.
        engine = KillOnceEngine(
            paper_index.qhl_engine(), str(tmp_path / "tripwire")
        )
        tracer = SpanTracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            report = execute_batch(
                engine, QUERIES, workers=2,
                supervised=True, supervision=FAST,
            )
        assert_batch_exact(report, paper_index.qhl_engine())
        # Bounded retries: one death, one requeue.
        assert registry.counter("supervisor_requeues_total").value == 1
        assert registry.counter(
            "supervisor_restarts_total", {"worker": "w0"}
        ).value + registry.counter(
            "supervisor_restarts_total", {"worker": "w1"}
        ).value == 1
        # One stitched trace: the truncated span carries the pid of the
        # killed worker and points at its respawned successor.
        root = tracer.last()
        assert root.name == "batch.fan-out"
        assert root.counters.get("supervised") == 1
        truncated = truncated_spans(root)
        assert len(truncated) == 1
        assert truncated[0].counters.get("respawned_as", 0) > 0
        assert truncated[0].counters["respawned_as"] != (
            truncated[0].counters["pid"]
        )
        kinds = [i.kind for i in report.incidents]
        assert "death" in kinds and "requeue" in kinds
        assert "restart" in kinds

    def test_kill_during_heartbeat(self, paper_index):
        # w0's heartbeat is suppressed by an injected fault (in every
        # incarnation), so it reads as wedged: the supervisor SIGKILLs
        # it, retries its lease, and eventually retires it behind the
        # restart breaker while w1 finishes the batch.  The engine is
        # slowed so a chunk genuinely outlasts the stall window — the
        # per-query heartbeat is what keeps the *healthy* worker alive.
        engine = SlowEngine(paper_index.qhl_engine(), delay_s=0.04)
        injector = FaultInjector()
        injector.fail(
            "worker-heartbeat", exc=RuntimeError, times=None,
            match={"worker": "w0"},
        )
        registry = MetricsRegistry()
        with use_injector(injector), use_registry(registry):
            report = execute_batch(
                engine, QUERIES, workers=2,
                supervised=True, supervision=FAST,
            )
        assert_batch_exact(report, paper_index.qhl_engine())
        assert registry.counter(
            "supervisor_heartbeat_stalls_total", {"worker": "w0"}
        ).value >= 1
        assert registry.counter(
            "supervisor_deaths_total", {"worker": "w0", "reason": "stall"}
        ).value >= 1
        kinds = [i.kind for i in report.incidents]
        assert "stall" in kinds

    def test_poison_query_is_quarantined_not_fatal(self, paper_index):
        # One query SIGKILLs every worker that touches it.  After the
        # chunk is split and the singleton exceeds its retries it comes
        # back as a quarantined failure row carrying the trace id; all
        # other queries still answer, and the pool does not crash-loop.
        baseline = paper_index.qhl_engine()
        poison_pair = QUERIES[0][:2]
        engine = PoisonPairEngine(baseline, poison_pair)
        registry = MetricsRegistry()
        config = SupervisionConfig(
            heartbeat_ms=20.0, stall_after_ms=400.0,
            backoff_base_s=0.005, backoff_max_s=0.05,
            max_task_retries=2, drain_grace_s=1.0,
        )
        with use_registry(registry):
            report = execute_batch(
                engine, QUERIES, workers=2,
                supervised=True, supervision=config,
            )
        poison_indices = {
            i for i, q in enumerate(QUERIES) if q[:2] == poison_pair
        }
        assert {f.index for f in report.failures} == poison_indices
        for failure in report.failures:
            assert failure.error == "TaskQuarantinedError"
            assert failure.trace_id == report.trace_id
            assert "attempts: 3" in failure.message
        expected = expected_pairs(baseline)
        for i, result in enumerate(report.results):
            if i in poison_indices:
                assert result is None
            else:
                assert result.pair() == expected[i]
        assert registry.counter(
            "supervisor_quarantined_total"
        ).value == len(poison_indices)
