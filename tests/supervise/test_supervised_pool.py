"""SupervisedPool semantics: leases, requeue, split, quarantine.

Worker deaths here are *real* — entrypoints SIGKILL their own process —
so the guarantees under test (at most one requeued task per death,
poison quarantine without a crash-loop, exhaustion instead of spinning)
hold against genuine process loss, not simulated exceptions.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.observability.metrics import MetricsRegistry, use_registry
from repro.supervise import SupervisedPool, SupervisionConfig

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)

FAST = SupervisionConfig(
    heartbeat_ms=20.0,
    stall_after_ms=400.0,
    backoff_base_s=0.005,
    backoff_max_s=0.05,
    drain_grace_s=1.0,
)


def doubling(payload, span, heartbeat):
    heartbeat()
    return payload * 2


def kill_once(payload, span, heartbeat):
    """SIGKILL the first worker process to touch a task (sentinel file)."""
    sentinel, value = payload
    try:
        os.close(os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        pass
    else:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def kill_on_poison(payload, span, heartbeat):
    """SIGKILL whenever the payload is the poison marker."""
    if payload == "poison":
        os.kill(os.getpid(), signal.SIGKILL)
    return payload * 2


def raising(payload, span, heartbeat):
    raise ValueError(f"bad payload {payload!r}")


class TestHappyPath:
    def test_all_results_in_task_order(self):
        pool = SupervisedPool(doubling, workers=2, config=FAST)
        report = pool.run([1, 2, 3, 4, 5, 6])
        assert report.failures == []
        assert report.results == {i: (i + 1) * 2 for i in range(6)}
        assert report.requeues == 0 and report.splits == 0

    def test_single_worker_fleet(self):
        pool = SupervisedPool(doubling, workers=1, config=FAST)
        report = pool.run([10, 20])
        assert report.results == {0: 20, 1: 40}

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            SupervisedPool(doubling, workers=0)

    def test_empty_payloads(self):
        pool = SupervisedPool(doubling, workers=2, config=FAST)
        report = pool.run([])
        assert report.results == {} and report.failures == []


class TestLostWork:
    def test_sigkill_requeues_exactly_the_lost_lease(self, tmp_path):
        sentinel = str(tmp_path / "tripwire")
        registry = MetricsRegistry()
        pool = SupervisedPool(kill_once, workers=2, config=FAST)
        with use_registry(registry):
            report = pool.run([(sentinel, v) for v in range(8)])
        assert report.failures == []
        assert report.results == {i: i * 2 for i in range(8)}
        # One death loses exactly one lease: one requeue, no more.
        assert report.requeues == 1
        assert registry.counter("supervisor_requeues_total").value == 1
        kinds = [i.kind for i in pool.supervisor.incidents.records()]
        assert "death" in kinds and "requeue" in kinds
        assert "restart" in kinds

    def test_task_error_is_a_failure_row_not_a_death(self):
        pool = SupervisedPool(raising, workers=2, config=FAST)
        report = pool.run(["a", "b"])
        assert report.results == {}
        assert len(report.failures) == 2
        for failure in report.failures:
            assert failure.reason == "task-error"
            assert failure.error == "ValueError"
        kinds = [i.kind for i in pool.supervisor.incidents.records()]
        assert "death" not in kinds  # the process survived the raise


class TestSplitAndQuarantine:
    def test_first_crash_splits_a_chunk(self, tmp_path):
        sentinel = str(tmp_path / "tripwire")

        def chunk_entry(payload, span, heartbeat):
            return [kill_once((sentinel, v), span, heartbeat) for v in payload]

        pool = SupervisedPool(
            chunk_entry, workers=2, config=FAST,
            split=lambda payload: [[v] for v in payload],
        )
        report = pool.run([[0, 1, 2], [3, 4, 5]])
        assert report.failures == []
        assert report.splits == 1
        # Results cover every vertex exactly once, whether computed in
        # the surviving chunk or a singleton retry.
        flat = sorted(
            value
            for chunk in report.results.values()
            for value in chunk
        )
        assert flat == [v * 2 for v in range(6)]

    def test_poison_task_is_quarantined_and_rest_completes(self):
        registry = MetricsRegistry()
        pool = SupervisedPool(kill_on_poison, workers=1, config=FAST)
        with use_registry(registry):
            report = pool.run(["a", "poison", "b", "c"])
        # The poison task is pulled after max_task_retries + 1 attempts;
        # everything else completes despite the one-worker fleet.
        assert report.results == {0: "aa", 2: "bb", 3: "cc"}
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.reason == "quarantined"
        assert failure.error == "TaskQuarantinedError"
        assert failure.task_id == 1
        assert failure.attempts == FAST.max_task_retries + 1
        assert registry.counter(
            "supervisor_quarantined_total"
        ).value == 1
        kinds = [i.kind for i in pool.supervisor.incidents.records()]
        assert "quarantine" in kinds

    def test_unsplittable_chunk_is_retried_whole(self, tmp_path):
        sentinel = str(tmp_path / "tripwire")

        def chunk_entry(payload, span, heartbeat):
            return [kill_once((sentinel, v), span, heartbeat) for v in payload]

        # split returning a single element marks the payload
        # unsplittable: the chunk is retried whole and succeeds.
        pool = SupervisedPool(
            chunk_entry, workers=2, config=FAST,
            split=lambda payload: [payload],
        )
        report = pool.run([[0, 1, 2]])
        assert report.failures == []
        assert report.splits == 0 and report.requeues == 1
        assert report.results == {0: [0, 2, 4]}


class TestExhaustion:
    def test_fleet_gone_returns_exhausted_failures(self):
        def die_always(payload, span, heartbeat):
            os.kill(os.getpid(), signal.SIGKILL)

        # Every attempt kills its worker; with retries > breaker budget
        # the fleet burns out first and the task comes back exhausted
        # instead of the pool spinning forever.
        config = SupervisionConfig(
            heartbeat_ms=20.0, stall_after_ms=400.0,
            backoff_base_s=0.002, backoff_max_s=0.01,
            max_restarts=2, restart_window_s=120.0,
            max_task_retries=50, drain_grace_s=0.5,
        )
        pool = SupervisedPool(die_always, workers=1, config=config)
        started = time.monotonic()
        report = pool.run(["doom"])
        assert time.monotonic() - started < 60.0
        assert report.results == {}
        assert len(report.failures) == 1
        assert report.failures[0].reason == "exhausted"
        assert report.failures[0].error == "WorkerRestartExhaustedError"
