"""Supervisor lifecycle: spawn, heartbeat, death, backoff, breaker.

These tests drive the :class:`~repro.supervise.supervisor.Supervisor`
directly (no pool on top) with real forked processes, so the spawn /
heartbeat / restart machinery is exercised end to end.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.observability.metrics import MetricsRegistry, use_registry
from repro.service import FaultInjector, use_injector
from repro.service.breaker import OPEN
from repro.supervise import (
    INCIDENT_KINDS,
    IncidentLog,
    Supervisor,
    SupervisionConfig,
    load_incidents,
    summarize,
    use_incident_log,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)

FAST = SupervisionConfig(
    heartbeat_ms=20.0,
    stall_after_ms=250.0,
    backoff_base_s=0.005,
    backoff_max_s=0.05,
    drain_grace_s=1.0,
)


def doubling(payload, span, heartbeat):
    heartbeat()
    return payload * 2


def sleepy_no_beat(payload, span, heartbeat):
    # Never beats: from the parent's viewpoint this worker is wedged.
    time.sleep(60.0)
    return payload


def run_to_completion(sup, tasks, timeout=20.0):
    """Submit ``tasks`` round-robin and drive poll/harvest until done."""
    ids = iter(range(len(tasks)))
    out = {}
    deadline = time.monotonic() + timeout
    pending = list(enumerate(tasks))
    for name in list(sup.workers):
        if pending:
            task_id, payload = pending.pop(0)
            sup.submit(name, task_id, payload)
    while len(out) < len(tasks):
        assert time.monotonic() < deadline, "supervisor test timed out"
        for task_id, worker, status, value in sup.harvest():
            assert status == "ok", value
            out[task_id] = value
            sup.note_success(worker)
            if pending:
                next_id, payload = pending.pop(0)
                sup.submit(worker, next_id, payload)
        sup.poll()
        time.sleep(0.005)
    return out


class TestLifecycle:
    def test_spawn_work_stop(self):
        sup = Supervisor(doubling, config=FAST)
        sup.add_worker("w0")
        sup.add_worker("w1")
        sup.start()
        try:
            out = run_to_completion(sup, [1, 2, 3, 4, 5])
        finally:
            sup.stop()
        assert out == {0: 2, 1: 4, 2: 6, 3: 8, 4: 10}
        kinds = [i.kind for i in sup.incidents.records()]
        assert kinds.count("spawn") == 2
        assert kinds.count("stop") == 2
        assert "death" not in kinds
        # The scratch dir (heartbeats + results) is reaped on stop.
        assert not os.path.exists(sup.directory)

    def test_duplicate_worker_name_rejected(self):
        sup = Supervisor(doubling, config=FAST)
        sup.add_worker("w0")
        with pytest.raises(ValueError, match="duplicate"):
            sup.add_worker("w0")
        sup.stop()

    def test_status_shapes(self):
        sup = Supervisor(doubling, config=FAST)
        sup.add_worker("w0")
        sup.start()
        try:
            status = sup.status()
            assert status["w0"]["state"] == "running"
            assert status["w0"]["restarts"] == 0
            assert status["w0"]["pid"] == status["w0"]["pids"][0]
        finally:
            sup.stop()
        assert sup.status()["w0"]["state"] == "down"


class TestDeathsAndRestarts:
    def test_sigkill_is_detected_and_respawned(self):
        sup = Supervisor(doubling, config=FAST)
        sup.add_worker("w0")
        sup.start()
        try:
            first_pid = sup.workers["w0"].pid
            os.kill(first_pid, 9)
            deadline = time.monotonic() + 10.0
            deaths = []
            while not deaths:
                assert time.monotonic() < deadline
                deaths = sup.poll()
                time.sleep(0.005)
            assert deaths[0].worker == "w0"
            assert deaths[0].reason == "signal"
            # Drive polls until the backoff elapses and w0 respawns.
            while sup.workers["w0"].process is None:
                assert time.monotonic() < deadline
                sup.poll()
                time.sleep(0.005)
            assert sup.workers["w0"].pid != first_pid
            assert sup.pid_successions() == {
                first_pid: sup.workers["w0"].pid
            }
            # The respawned worker works.
            out = run_to_completion(sup, [21])
            assert out == {0: 42}
        finally:
            sup.stop()
        kinds = [i.kind for i in sup.incidents.records()]
        assert "death" in kinds and "restart" in kinds

    def test_heartbeat_stall_is_killed(self):
        sup = Supervisor(sleepy_no_beat, config=FAST)
        sup.add_worker("w0")
        sup.start()
        try:
            sup.submit("w0", 0, "x")
            deadline = time.monotonic() + 10.0
            deaths = []
            while not deaths:
                assert time.monotonic() < deadline
                deaths = sup.poll()
                time.sleep(0.005)
            assert deaths[0].reason == "stall"
        finally:
            sup.stop()
        kinds = [i.kind for i in sup.incidents.records()]
        assert "stall" in kinds and "death" in kinds

    def test_spawn_fault_becomes_supervised_death(self):
        injector = FaultInjector()
        injector.fail(
            "worker-spawn", exc=RuntimeError, times=1,
            match={"worker": "w0"},
        )
        with use_injector(injector):
            sup = Supervisor(doubling, config=FAST)
            sup.add_worker("w0")
            sup.start()
            try:
                assert sup.workers["w0"].process is None
                # The failed spawn scheduled a respawn; drive it.
                deadline = time.monotonic() + 10.0
                while sup.workers["w0"].process is None:
                    assert time.monotonic() < deadline
                    sup.poll()
                    time.sleep(0.005)
                out = run_to_completion(sup, [3])
                assert out == {0: 6}
            finally:
                sup.stop()
        deaths = [
            i for i in sup.incidents.records() if i.kind == "death"
        ]
        assert deaths and deaths[0].detail.startswith("spawn-failed")

    def test_breaker_opens_after_max_restarts(self):
        injector = FaultInjector()
        injector.fail(
            "worker-spawn", exc=RuntimeError, times=None,
            match={"worker": "w0"},
        )
        registry = MetricsRegistry()
        with use_injector(injector), use_registry(registry):
            sup = Supervisor(
                doubling,
                config=SupervisionConfig(
                    max_restarts=2, restart_window_s=60.0,
                    backoff_base_s=0.001, backoff_max_s=0.002,
                ),
            )
            sup.add_worker("w0")
            sup.start()
            try:
                deadline = time.monotonic() + 10.0
                while sup.workers["w0"].breaker.state != OPEN:
                    assert time.monotonic() < deadline
                    sup.poll()
                    time.sleep(0.005)
                assert not sup.can_make_progress()
            finally:
                sup.stop()
        assert registry.counter(
            "supervisor_breaker_open_total", {"worker": "w0"}
        ).value >= 1
        kinds = [i.kind for i in sup.incidents.records()]
        assert "breaker-open" in kinds

    def test_forgive_resets_the_breaker(self):
        sup = Supervisor(doubling, config=FAST)
        sup.add_worker("w0")
        for _ in range(sup.config.max_restarts):
            sup.workers["w0"].breaker.record_failure()
        assert sup.workers["w0"].breaker.state == OPEN
        sup.forgive("w0")
        assert sup.workers["w0"].breaker.state != OPEN
        sup.stop()


class TestMetricsAndIncidents:
    def test_lifecycle_metrics_are_emitted(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            sup = Supervisor(doubling, config=FAST)
            sup.add_worker("w0")
            sup.start()
            try:
                os.kill(sup.workers["w0"].pid, 9)
                deadline = time.monotonic() + 10.0
                while sup.workers["w0"].restarts == 0 or (
                    sup.workers["w0"].process is None
                ):
                    assert time.monotonic() < deadline
                    sup.poll()
                    time.sleep(0.005)
            finally:
                sup.stop()
        assert registry.counter(
            "supervisor_spawns_total", {"worker": "w0"}
        ).value == 2
        assert registry.counter(
            "supervisor_restarts_total", {"worker": "w0"}
        ).value == 1
        assert registry.counter(
            "supervisor_deaths_total",
            {"worker": "w0", "reason": "signal"},
        ).value == 1
        assert registry.gauge("supervisor_workers").value == 0

    def test_incident_sink_dump_and_summary(self, tmp_path):
        sink = IncidentLog()
        with use_incident_log(sink):
            sup = Supervisor(doubling, config=FAST)
            sup.add_worker("w0")
            sup.start()
            try:
                out = run_to_completion(sup, [7])
                assert out == {0: 14}
            finally:
                sup.stop()
        path = str(tmp_path / "incidents.jsonl")
        written = sink.dump(path)
        assert written == len(sink.records()) >= 2
        loaded = load_incidents(path)
        assert loaded == sink.records()
        summary = summarize(loaded)
        assert summary["workers"]["w0"]["spawn"] == 1
        assert summary["totals"]["stop"] == 1
        assert set(summary["totals"]) == set(INCIDENT_KINDS)
