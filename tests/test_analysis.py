"""Tests for the analysis tooling (skyline growth, approximation)."""

import pytest

from repro.analysis import (
    label_depth_profile,
    measure_approximation,
    skyline_growth_profile,
)
from repro.graph import estimate_diameter, grid_network
from repro.workloads import generate_distance_sets


@pytest.fixture(scope="module")
def grid():
    return grid_network(9, 9, seed=13)


@pytest.fixture(scope="module")
def dmax(grid):
    return estimate_diameter(grid)


class TestSkylineGrowth:
    def test_five_bands_returned(self, grid, dmax):
        profiles = skyline_growth_profile(
            grid, d_max=dmax, num_sources=4, seed=1
        )
        assert [p.band for p in profiles] == ["Q1", "Q2", "Q3", "Q4", "Q5"]

    def test_band_edges_match_paper_formula(self, grid, dmax):
        profiles = skyline_growth_profile(
            grid, d_max=dmax, num_sources=2, seed=1
        )
        assert profiles[0].low == pytest.approx(dmax / 32)
        assert profiles[4].high == pytest.approx(dmax)

    def test_growth_with_distance(self, grid, dmax):
        """The paper's Fig. 6 mechanism: skylines grow with distance."""
        profiles = skyline_growth_profile(
            grid, d_max=dmax, num_sources=6, seed=2
        )
        sampled = [p for p in profiles if p.samples > 0]
        assert sampled[-1].avg_size > sampled[0].avg_size

    def test_max_at_least_avg(self, grid, dmax):
        for p in skyline_growth_profile(grid, d_max=dmax, num_sources=3):
            if p.samples:
                assert p.max_size >= p.avg_size

    def test_row_formatting(self, grid, dmax):
        profile = skyline_growth_profile(
            grid, d_max=dmax, num_sources=2
        )[0]
        assert "Q1" in profile.row()


class TestLabelDepthProfile:
    def test_counts_sum_to_sets(self, small_grid_index):
        profile = label_depth_profile(
            small_grid_index.labels, small_grid_index.tree
        )
        total = sum(count for count, _avg in profile.values())
        assert total == small_grid_index.labels.num_sets()

    def test_root_depth_absent(self, small_grid_index):
        # The root has no ancestors, hence no label sets.
        profile = label_depth_profile(
            small_grid_index.labels, small_grid_index.tree
        )
        assert 0 not in profile


class TestApproximation:
    @pytest.fixture(scope="class")
    def reports(self, ):
        grid = grid_network(7, 7, seed=21)
        d_max = estimate_diameter(grid)
        sets = generate_distance_sets(grid, size=20, d_max=d_max, seed=21)
        return measure_approximation(
            grid, sets["Q4"].queries, caps=(2, 6), seed=21
        )

    def test_exact_row_has_zero_error(self, reports):
        assert reports[0].max_skyline is None
        assert reports[0].avg_weight_error == 0.0
        assert reports[0].false_infeasible == 0

    def test_truncation_shrinks_index(self, reports):
        exact, cap2, cap6 = reports
        assert cap2.label_entries <= cap6.label_entries
        assert cap6.label_entries <= exact.label_entries

    def test_errors_are_nonnegative_and_bounded(self, reports):
        for report in reports[1:]:
            assert report.avg_weight_error >= 0
            assert report.max_weight_error >= report.avg_weight_error

    def test_looser_cap_not_worse(self, reports):
        _exact, cap2, cap6 = reports
        assert cap6.avg_weight_error <= cap2.avg_weight_error

    def test_row_formatting(self, reports):
        assert "exact" in reports[0].row()
        assert "2" in reports[1].row()
