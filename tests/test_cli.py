"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A generated network + built index shared by the CLI tests."""
    root = tmp_path_factory.mktemp("cli")
    net = str(root / "ny.csp")
    idx = str(root / "ny.idx")
    assert main([
        "generate", "--dataset", "NY", "--scale", "small", "--out", net
    ]) == 0
    assert main([
        "build", "--network", net, "--out", idx, "--index-queries", "200"
    ]) == 0
    return net, idx


class TestGenerate:
    def test_writes_readable_network(self, workspace):
        from repro.graph import read_csp_text

        net, _idx = workspace
        g = read_csp_text(net)
        assert g.num_vertices == 144

    def test_all_datasets(self, tmp_path):
        for name in ("NY", "BAY", "COL"):
            out = str(tmp_path / f"{name}.csp")
            assert main([
                "generate", "--dataset", name, "--scale", "small",
                "--out", out,
            ]) == 0

    def test_unknown_dataset_rejected_by_argparse(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "generate", "--dataset", "MARS",
                "--out", str(tmp_path / "m.csp"),
            ])


class TestQuery:
    def test_feasible_query(self, workspace, capsys):
        _net, idx = workspace
        code = main([
            "query", "--index", idx, "--source", "0", "--target", "140",
            "--budget", "500",
        ])
        assert code == 0
        assert "optimal weight" in capsys.readouterr().out

    def test_path_flag_prints_route(self, workspace, capsys):
        _net, idx = workspace
        main([
            "query", "--index", idx, "--source", "0", "--target", "140",
            "--budget", "500", "--path",
        ])
        out = capsys.readouterr().out
        assert "->" in out

    def test_infeasible_query_exit_code(self, workspace):
        _net, idx = workspace
        code = main([
            "query", "--index", idx, "--source", "0", "--target", "140",
            "--budget", "1",
        ])
        assert code == 1

    def test_bad_vertex_reports_error(self, workspace, capsys):
        _net, idx = workspace
        code = main([
            "query", "--index", idx, "--source", "0", "--target", "9999",
            "--budget", "10",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestStats:
    def test_prints_index_statistics(self, workspace, capsys):
        _net, idx = workspace
        assert main(["stats", "--index", idx]) == 0
        out = capsys.readouterr().out
        assert "treewidth" in out
        assert "label size" in out
        assert "pruning conds" in out

    def test_missing_index_reports_error(self, tmp_path):
        code = main(["stats", "--index", str(tmp_path / "nope.idx")])
        assert code == 2


class TestWorkloadAndBench:
    def test_workload_generation(self, workspace, tmp_path, capsys):
        net, _idx = workspace
        out = str(tmp_path / "ny.queries")
        assert main([
            "workload", "--network", net, "--out", out, "--size", "10",
        ]) == 0
        from repro.workloads import read_query_sets

        sets = read_query_sets(out)
        assert sorted(sets) == ["Q1", "Q2", "Q3", "Q4", "Q5"]
        assert all(len(s) == 10 for s in sets.values())

    def test_bench_runs_and_prints_rows(self, workspace, tmp_path, capsys):
        net, _idx = workspace
        queries = str(tmp_path / "ny.queries")
        main(["workload", "--network", net, "--out", queries,
              "--size", "5"])
        capsys.readouterr()
        assert main([
            "bench", "--network", net, "--queries", queries,
            "--index-queries", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "QHL" in out
        assert "CSP-2Hop" in out
        assert "Q5" in out


class TestObservabilityFlags:
    def test_query_trace_prints_qhl_phases(self, workspace, capsys):
        _net, idx = workspace
        code = main([
            "query", "--index", idx, "--source", "0", "--target", "140",
            "--budget", "500", "--trace",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "qhl.query" in out
        for phase in ("lca", "separator-init", "pruning", "concatenation"):
            assert phase in out
        # The legend ties phases back to the paper.
        assert "Algorithm 3" in out

    def test_build_metrics_out(self, workspace, tmp_path, capsys):
        from repro.observability.export import parse_jsonl

        net, _idx = workspace
        idx2 = str(tmp_path / "obs.idx")
        metrics = tmp_path / "build.jsonl"
        assert main([
            "build", "--network", net, "--out", idx2,
            "--index-queries", "50", "--metrics-out", str(metrics),
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        records = parse_jsonl(metrics.read_text())
        names = {r["name"] for r in records}
        assert "qhl_index_treewidth" in names
        assert "qhl_index_build_seconds" in names

    def test_workload_metrics_out(self, workspace, tmp_path):
        from repro.observability.export import parse_jsonl

        net, _idx = workspace
        out = str(tmp_path / "obs.queries")
        metrics = tmp_path / "workload.jsonl"
        assert main([
            "workload", "--network", net, "--out", out, "--size", "5",
            "--metrics-out", str(metrics),
        ]) == 0
        records = parse_jsonl(metrics.read_text())
        phases = {
            r["labels"]["phase"]
            for r in records
            if r["name"] == "qhl_workload_phase_seconds"
        }
        assert phases == {"estimate-diameter", "generate-sets"}
        for record in records:
            if record["type"] == "histogram":
                assert {"p50", "p95", "p99"} <= set(record["percentiles"])

    def test_unwritable_metrics_path_reports_error(
        self, workspace, tmp_path, capsys
    ):
        net, _idx = workspace
        code = main([
            "build", "--network", net, "--out", str(tmp_path / "x.idx"),
            "--index-queries", "50",
            "--metrics-out", str(tmp_path / "missing" / "m.jsonl"),
        ])
        assert code == 2
        assert "cannot write metrics" in capsys.readouterr().err

    def test_bench_metrics_out(self, workspace, tmp_path, capsys):
        from repro.observability.export import parse_jsonl

        net, _idx = workspace
        queries = str(tmp_path / "obs.queries")
        main(["workload", "--network", net, "--out", queries, "--size", "5"])
        metrics = tmp_path / "bench.jsonl"
        assert main([
            "bench", "--network", net, "--queries", queries,
            "--index-queries", "100", "--metrics-out", str(metrics),
        ]) == 0
        capsys.readouterr()
        records = parse_jsonl(metrics.read_text())
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        # Per-engine end-to-end latency histograms with percentiles.
        engines = {
            r["labels"]["engine"] for r in by_name["qhl_query_seconds"]
        }
        assert {"QHL", "CSP-2Hop"} <= engines
        for record in by_name["qhl_query_seconds"]:
            assert record["count"] > 0
            assert {"p50", "p95", "p99"} <= set(record["percentiles"])
        # Per-phase histograms from the query pipeline.
        phases = {
            r["labels"]["phase"] for r in by_name["qhl_phase_seconds"]
        }
        assert "lca" in phases
        # The harness's own per-workload histograms rode along too.
        assert "qhl_workload_query_seconds" in by_name


class TestBuildOptions:
    def test_no_paths_build(self, workspace, tmp_path):
        net, _idx = workspace
        idx2 = str(tmp_path / "nopaths.idx")
        assert main([
            "build", "--network", net, "--out", idx2,
            "--index-queries", "50", "--no-paths",
        ]) == 0
        assert main([
            "query", "--index", idx2, "--source", "0", "--target", "10",
            "--budget", "500",
        ]) == 0


class TestBuildHardening:
    def test_interrupted_build_resumes_via_cli(
        self, workspace, tmp_path, capsys
    ):
        import os

        net, idx = workspace
        out = str(tmp_path / "resumed.idx")
        ckpt = str(tmp_path / "ckpt")
        # A zero time budget kills the build at the first level
        # boundary (exit 2, typed error), leaving checkpoints behind.
        code = main([
            "build", "--network", net, "--out", out,
            "--index-queries", "50",
            "--checkpoint-dir", ckpt, "--max-build-seconds", "0",
        ])
        assert code == 2
        assert "--resume" in capsys.readouterr().err
        assert not os.path.exists(out)
        # --resume finishes the build and clears the checkpoints.
        assert main([
            "build", "--network", net, "--out", out,
            "--index-queries", "50",
            "--checkpoint-dir", ckpt, "--resume",
        ]) == 0
        assert not any(
            name.endswith(".ckpt") for name in os.listdir(ckpt)
        )
        # The resumed index answers queries like the uninterrupted one.
        from repro.storage.serialize import load_index

        resumed = load_index(out)
        fresh = load_index(idx)
        q = resumed.query(0, 140, budget=500)
        assert q.weight == fresh.query(0, 140, budget=500).weight

    def test_lenient_flag_salvages_messy_network(self, tmp_path, capsys):
        messy = tmp_path / "messy.csp"
        messy.write_text(
            "csp 5 5\n"
            "some junk line\n"
            "e 0 1 1 1\ne 1 2 1 1\ne 2 3 1 1\n"
            "e 3 3 1 1\n"   # self loop
            "e 3 4 0 1\n",  # zero weight (disconnects vertex 4)
        )
        out = str(tmp_path / "messy.idx")
        assert main([
            "build", "--network", str(messy), "--out", out,
            "--index-queries", "20",
        ]) == 2
        assert "error" in capsys.readouterr().err
        assert main([
            "build", "--network", str(messy), "--out", out,
            "--index-queries", "20", "--lenient",
        ]) == 0

    def test_verify_metrics_out(self, workspace, tmp_path, capsys):
        from repro.observability.export import parse_jsonl

        _net, idx = workspace
        metrics = tmp_path / "verify.jsonl"
        assert main([
            "verify", "--index", idx, "--queries", "2",
            "--metrics-out", str(metrics),
        ]) == 0
        capsys.readouterr()
        names = {r["name"] for r in parse_jsonl(metrics.read_text())}
        assert "audit_runs_total" in names
        assert "audit_checks_total" in names
        assert "audit_seconds" in names


class TestFlightRecorderCLI:
    def _flown(self, workspace, tmp_path):
        """Run a couple of queries with --flight-out; return the dump."""
        _net, idx = workspace
        out = str(tmp_path / "flight.jsonl")
        assert main([
            "query", "--index", idx, "--source", "0", "--target", "140",
            "--budget", "500", "--flight-out", out,
        ]) == 0
        return out

    def test_query_flight_out_writes_loadable_dump(
        self, workspace, tmp_path, capsys
    ):
        from repro.observability.flight import load_flight

        out = self._flown(workspace, tmp_path)
        assert "flight record" in capsys.readouterr().out
        records = load_flight(out)
        assert len(records) == 1
        assert records[0].outcome == "ok"
        assert records[0].engine == "qhl"

    def test_flight_dump_prints_table(self, workspace, tmp_path, capsys):
        out = self._flown(workspace, tmp_path)
        capsys.readouterr()
        assert main(["flight", "dump", "--file", out]) == 0
        table = capsys.readouterr().out
        assert "seq" in table and "outcome" in table
        assert "ok" in table

    def test_flight_tail_json(self, workspace, tmp_path, capsys):
        import json

        out = self._flown(workspace, tmp_path)
        capsys.readouterr()
        assert main(["flight", "tail", "--file", out, "--json"]) == 0
        rows = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines() if line
        ]
        assert rows and rows[-1]["outcome"] == "ok"
        assert rows[-1]["seq"] == 1

    def test_flight_slow_filter(self, workspace, tmp_path, capsys):
        _net, idx = workspace
        out = str(tmp_path / "flight.jsonl")
        # Impossibly tight slow threshold: the query is marked slow.
        assert main([
            "query", "--index", idx, "--source", "0", "--target", "140",
            "--budget", "500", "--flight-out", out,
            "--slow-ms", "0.0001",
        ]) == 0
        capsys.readouterr()
        assert main(["flight", "dump", "--file", out, "--slow"]) == 0
        assert "S" in capsys.readouterr().out

    def test_flight_missing_file_reports_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["flight", "dump", "--file", missing]) == 2
        assert "error" in capsys.readouterr().err

    def test_bench_flight_out(self, workspace, tmp_path, capsys):
        from repro.observability.flight import load_flight

        net, _idx = workspace
        wl = str(tmp_path / "wl.queries")
        out = str(tmp_path / "bench-flight.jsonl")
        assert main([
            "workload", "--network", net, "--out", wl, "--size", "5",
        ]) == 0
        capsys.readouterr()
        assert main([
            "bench", "--network", net, "--queries", wl,
            "--index-queries", "100", "--flight-out", out,
        ]) == 0
        records = load_flight(out)
        assert len(records) >= 5


class TestSupervision:
    def test_supervised_build_dumps_incidents(
        self, workspace, tmp_path, capsys
    ):
        net, _idx = workspace
        incidents = str(tmp_path / "incidents.jsonl")
        assert main([
            "build", "--network", net,
            "--out", str(tmp_path / "sup.idx"),
            "--index-queries", "50", "--workers", "2",
            "--supervised", "--heartbeat-ms", "50",
            "--incident-out", incidents,
        ]) == 0
        out = capsys.readouterr().out
        assert "supervision incidents" in out
        assert main([
            "supervise", "status", "--incidents", incidents,
        ]) == 0
        table = capsys.readouterr().out
        assert "worker" in table and "spawn" in table
        assert "total" in table

    def test_supervise_status_json(self, workspace, tmp_path, capsys):
        import json

        net, _idx = workspace
        incidents = str(tmp_path / "incidents.jsonl")
        assert main([
            "build", "--network", net,
            "--out", str(tmp_path / "sup.idx"),
            "--index-queries", "50", "--workers", "2",
            "--supervised", "--incident-out", incidents,
        ]) == 0
        capsys.readouterr()
        assert main([
            "supervise", "status", "--incidents", incidents, "--json",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["totals"]["spawn"] >= 2
        assert summary["totals"]["death"] == 0

    def test_supervise_status_rejects_garbage(self, tmp_path, capsys):
        path = str(tmp_path / "junk.jsonl")
        with open(path, "w") as f:
            f.write("this is not json\n")
        assert main([
            "supervise", "status", "--incidents", path,
        ]) == 2
        assert "error" in capsys.readouterr().err

    def test_supervise_status_missing_file(self, tmp_path, capsys):
        assert main([
            "supervise", "status",
            "--incidents", str(tmp_path / "nope.jsonl"),
        ]) == 2
        assert "error" in capsys.readouterr().err


class TestLiveUpdates:
    def _apply(self, workspace, journal, extra):
        net, _idx = workspace
        return main([
            "update", "apply", "--journal", journal,
            "--network", net, "--index-queries", "100",
            "--audit", "off", *extra,
        ])

    def test_apply_single_edge_publishes_an_epoch(
        self, workspace, tmp_path, capsys
    ):
        journal = str(tmp_path / "journal")
        assert self._apply(
            workspace, journal, ["--edge", "3", "--weight", "55"]
        ) == 0
        out = capsys.readouterr().out
        assert "epoch 1" in out
        assert "delta(s)" in out

    def test_apply_delta_file_and_save(self, workspace, tmp_path, capsys):
        from repro.storage.serialize import load_index

        journal = str(tmp_path / "journal")
        deltas = tmp_path / "d.jsonl"
        deltas.write_text(
            '{"edge": 3, "weight": 55}\n'
            '{"edge": 9, "cost": 17}\n'
        )
        out = str(tmp_path / "repaired.idx")
        assert self._apply(
            workspace, journal, ["--deltas", str(deltas), "--out", out]
        ) == 0
        assert "saved repaired index" in capsys.readouterr().out
        # The saved index answers with the updated metrics baked in.
        assert load_index(out).query(0, 140, budget=500).feasible

    def test_status_reports_the_watermark(
        self, workspace, tmp_path, capsys
    ):
        import json

        journal = str(tmp_path / "journal")
        self._apply(workspace, journal, ["--edge", "3", "--weight", "55"])
        capsys.readouterr()
        assert main([
            "update", "status", "--journal", journal, "--json",
        ]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["last_seq"] == 1
        assert status["published_seq"] == 1
        assert status["pending"] == 0
        assert status["torn_lines"] == 0

    def test_status_exit_one_when_pending(self, tmp_path, capsys):
        from repro.dynamic import UpdateJournal

        journal = str(tmp_path / "journal")
        UpdateJournal(journal).append([(0, 5.0, None)], ts=0.0)
        assert main(["update", "status", "--journal", journal]) == 1
        assert "pending batches       1" in capsys.readouterr().out

    def test_replay_converges_a_pending_journal(
        self, workspace, tmp_path, capsys
    ):
        from repro.dynamic import UpdateJournal

        journal = str(tmp_path / "journal")
        UpdateJournal(journal).append([(3, 55.0, None)], ts=0.0)
        net, _idx = workspace
        assert main([
            "update", "replay", "--journal", journal,
            "--network", net, "--index-queries", "100", "--audit", "off",
        ]) == 0
        out = capsys.readouterr().out
        assert "replayed 1 journalled batch(es)" in out
        assert "backlog 0" in out
        assert main(["update", "status", "--journal", journal]) == 0

    def test_apply_without_network_is_an_error(self, tmp_path, capsys):
        assert main([
            "update", "apply", "--journal", str(tmp_path / "journal"),
            "--edge", "0", "--weight", "5",
        ]) == 2
        assert "--network" in capsys.readouterr().err

    def test_apply_without_deltas_is_an_error(
        self, workspace, tmp_path, capsys
    ):
        assert self._apply(
            workspace, str(tmp_path / "journal"), []
        ) == 2
        assert "--deltas" in capsys.readouterr().err

    def test_bad_delta_file_is_an_error(self, workspace, tmp_path, capsys):
        deltas = tmp_path / "bad.jsonl"
        deltas.write_text('{"weight": 5}\n')
        assert self._apply(
            workspace, str(tmp_path / "journal"),
            ["--deltas", str(deltas)],
        ) == 2
        assert "bad delta record" in capsys.readouterr().err

    def test_bench_updates_flag_prints_summary(
        self, workspace, tmp_path, capsys
    ):
        net, _idx = workspace
        queries = str(tmp_path / "u.queries")
        main(["workload", "--network", net, "--out", queries,
              "--size", "5"])
        capsys.readouterr()
        assert main([
            "bench", "--network", net, "--queries", queries,
            "--index-queries", "100", "--updates", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "updates[Q1]" in out
        assert "live update" in out
