"""CLI coverage for the performance flags (cache / batch / workers)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A small network, index, and query file shared by these tests."""
    root = tmp_path_factory.mktemp("cli_perf")
    net = str(root / "ny.csp")
    queries = str(root / "ny.queries")
    assert main([
        "generate", "--dataset", "NY", "--scale", "small", "--out", net
    ]) == 0
    assert main([
        "workload", "--network", net, "--out", queries, "--size", "5",
    ]) == 0
    return net, queries


class TestBenchCacheSize:
    def test_cached_engine_rides_along(self, workspace, capsys):
        net, queries = workspace
        assert main([
            "bench", "--network", net, "--queries", queries,
            "--index-queries", "100", "--cache-size", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "QHL+cache" in out
        assert "QHL" in out and "CSP-2Hop" in out
        assert "cache:" in out
        assert "hit rate" in out

    def test_no_cache_line_without_flag(self, workspace, capsys):
        net, queries = workspace
        assert main([
            "bench", "--network", net, "--queries", queries,
            "--index-queries", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "QHL+cache" not in out
        assert "cache:" not in out


class TestBenchBatch:
    def test_batch_mode_runs_all_sets(self, workspace, capsys):
        net, queries = workspace
        assert main([
            "bench", "--network", net, "--queries", queries,
            "--index-queries", "100", "--batch", "--cache-size", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "Q5" in out
        assert "QHL+cache" in out

    def test_batch_with_workers(self, workspace, capsys):
        from repro.perf.batch import _fork_context

        if _fork_context() is None:
            pytest.skip("fork start method unavailable")
        net, queries = workspace
        assert main([
            "bench", "--network", net, "--queries", queries,
            "--index-queries", "100", "--batch", "--workers", "2",
        ]) == 0
        assert "Q1" in capsys.readouterr().out


class TestBuildWorkers:
    def test_parallel_build_from_cli(self, workspace, tmp_path, capsys):
        net, _queries = workspace
        idx = str(tmp_path / "parallel.idx")
        assert main([
            "build", "--network", net, "--out", idx,
            "--index-queries", "50", "--workers", "2",
        ]) == 0
        capsys.readouterr()
        assert main([
            "query", "--index", idx, "--source", "0", "--target", "140",
            "--budget", "500",
        ]) == 0
        assert "optimal weight" in capsys.readouterr().out
