"""Tests for the compact (array-packed, gzipped) index format."""

import random

import pytest

from repro.core import QHLIndex
from repro.exceptions import SerializationError
from repro.graph import grid_network, random_connected_network
from repro.storage import (
    load_compact_index,
    pack_labels,
    save_compact_index,
    save_index,
    unpack_labels,
)


@pytest.fixture(scope="module")
def built():
    g = random_connected_network(30, 25, seed=14)
    return g, QHLIndex.build(g, num_index_queries=200, seed=14)


class TestPackUnpack:
    def test_roundtrip_preserves_every_set(self, built):
        _g, index = built
        restored = unpack_labels(pack_labels(index.labels))
        for v, u, entries in index.labels.items():
            got = restored.get(v, u)
            assert [(e[0], e[1]) for e in got] == [
                (e[0], e[1]) for e in entries
            ]

    def test_integer_metrics_restored_as_ints(self, built):
        _g, index = built
        restored = unpack_labels(pack_labels(index.labels))
        some = next(iter(restored.items()))[2]
        assert all(isinstance(e[0], int) for e in some)

    def test_float_metrics_survive(self):
        from repro.graph import RoadNetwork

        g = RoadNetwork(3)
        g.add_edge(0, 1, weight=1.5, cost=2.25)
        g.add_edge(1, 2, weight=3.5, cost=0.75)
        index = QHLIndex.build(g, num_index_queries=10, seed=0)
        restored = unpack_labels(pack_labels(index.labels))
        assert [(e[0], e[1]) for e in restored.get(0, 2)] == [
            (e[0], e[1]) for e in index.labels.get(0, 2)
        ]

    def test_provenance_dropped(self, built):
        _g, index = built
        restored = unpack_labels(pack_labels(index.labels))
        for _v, _u, entries in restored.items():
            assert all(e[2] is None for e in entries)

    def test_size_accounting(self, built):
        _g, index = built
        compact = pack_labels(index.labels)
        assert compact.size_bytes() > 0
        assert len(compact.weights) == index.labels.num_entries()

    def test_corrupt_offsets_rejected(self, built):
        _g, index = built
        compact = pack_labels(index.labels)
        compact.set_offsets.pop()
        with pytest.raises(SerializationError):
            unpack_labels(compact)


class TestCompactFileFormat:
    def test_roundtrip_answers(self, built, tmp_path):
        g, index = built
        path = str(tmp_path / "c.idx")
        save_compact_index(index, path)
        loaded = load_compact_index(path)
        rng = random.Random(3)
        for _ in range(40):
            s, t = rng.randrange(30), rng.randrange(30)
            budget = rng.randint(1, 300)
            assert loaded.query(s, t, budget).pair() == index.query(
                s, t, budget
            ).pair()

    def test_pruning_conditions_survive(self, built, tmp_path):
        _g, index = built
        path = str(tmp_path / "c.idx")
        save_compact_index(index, path)
        loaded = load_compact_index(path)
        assert (
            loaded.pruning.num_conditions == index.pruning.num_conditions
        )

    def test_smaller_than_full_format_on_disk(self, tmp_path):
        g = grid_network(14, 14, seed=15)
        index = QHLIndex.build(
            g, num_index_queries=300, store_paths=False, seed=15
        )
        full = save_index(index, str(tmp_path / "full.idx"))
        compact = save_compact_index(index, str(tmp_path / "c.idx"))
        assert compact < full

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_compact_index(str(tmp_path / "nope.idx"))

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.idx"
        path.write_bytes(b"definitely not gzip")
        with pytest.raises(SerializationError):
            load_compact_index(str(path))

    def test_full_format_rejected_by_compact_loader(self, built, tmp_path):
        _g, index = built
        path = str(tmp_path / "full.idx")
        save_index(index, path)
        with pytest.raises(SerializationError):
            load_compact_index(path)

    def test_path_retrieval_unavailable_after_compact(self, built, tmp_path):
        from repro.exceptions import ReproError

        _g, index = built
        path = str(tmp_path / "c.idx")
        save_compact_index(index, path)
        loaded = load_compact_index(path)
        result = loaded.query(0, 29, 10_000)
        assert result.feasible
        with pytest.raises(ReproError):
            loaded.query(0, 29, 10_000, want_path=True)
