"""Unit tests for the dataset catalog and the paper example network."""

import pytest

from repro.datasets import (
    DATASET_NAMES,
    PAPER_EDGES,
    load_all,
    load_dataset,
    paper_figure1_network,
    v,
)
from repro.exceptions import ReproError


class TestCatalog:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_small_scale_loads_connected(self, name):
        ds = load_dataset(name, scale="small")
        assert ds.name == name
        assert ds.network.is_connected()
        assert ds.description

    def test_case_insensitive_name(self):
        assert load_dataset("ny", scale="small").name == "NY"

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError):
            load_dataset("MARS")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ReproError):
            load_dataset("NY", scale="galactic")

    def test_load_all_order(self):
        names = [ds.name for ds in load_all(scale="small")]
        assert names == ["NY", "BAY", "COL"]

    def test_deterministic(self):
        a = load_dataset("COL", scale="small").network
        b = load_dataset("COL", scale="small").network
        assert list(a.edges()) == list(b.edges())

    def test_benchmark_scale_larger_than_small(self):
        for name in DATASET_NAMES:
            small = load_dataset(name, scale="small").network
            bench = load_dataset(name, scale="benchmark").network
            assert bench.num_vertices > small.num_vertices


class TestPaperExample:
    def test_thirteen_vertices_seventeen_edges(self):
        g = paper_figure1_network()
        assert g.num_vertices == 13
        assert g.num_edges == len(PAPER_EDGES) == 17

    def test_example1_edge_metrics(self):
        # w((v8, v3)) = 2 and c((v8, v3)) = 4.
        g = paper_figure1_network()
        assert g.edge_metrics(v(8), v(3)) == [(2, 4)]

    def test_vertex_translation(self):
        assert v(1) == 0
        assert v(13) == 12
        with pytest.raises(ValueError):
            v(0)
        with pytest.raises(ValueError):
            v(14)

    def test_example3_path_metrics(self):
        g = paper_figure1_network()
        path = [v(8), v(1), v(13), v(11), v(10), v(9)]
        assert g.path_metrics(path) == (14, 18)

    def test_connected(self):
        assert paper_figure1_network().is_connected()
