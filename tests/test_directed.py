"""Tests for the directed-graph extension (paper §2.3's deferral)."""

import random

import pytest

from repro.directed import (
    DirectedQHLIndex,
    DirectedRoadNetwork,
    directed_constrained_dijkstra,
    directed_from_undirected,
    directed_skyline_search,
)
from repro.exceptions import InvalidGraphError
from repro.graph import random_connected_network


@pytest.fixture(scope="module")
def one_way_pair():
    """0 -> 1 fast/expensive; 1 -> 0 only via 2 (asymmetric)."""
    g = DirectedRoadNetwork(3)
    g.add_arc(0, 1, weight=1, cost=9)
    g.add_arc(1, 2, weight=2, cost=2)
    g.add_arc(2, 0, weight=2, cost=2)
    g.add_arc(0, 2, weight=5, cost=1)
    g.add_arc(2, 1, weight=5, cost=1)
    return g


class TestDirectedNetwork:
    def test_arcs_are_one_way(self, one_way_pair):
        heads = [h for h, _w, _c in one_way_pair.out_neighbors(1)]
        assert heads == [2]

    def test_in_neighbors(self, one_way_pair):
        tails = [t for t, _w, _c in one_way_pair.in_neighbors(1)]
        assert sorted(tails) == [0, 2]

    def test_self_loop_rejected(self):
        g = DirectedRoadNetwork(2)
        with pytest.raises(InvalidGraphError):
            g.add_arc(1, 1, weight=1, cost=1)

    def test_nonpositive_metric_rejected(self):
        g = DirectedRoadNetwork(2)
        with pytest.raises(InvalidGraphError):
            g.add_arc(0, 1, weight=0, cost=1)

    def test_path_metrics_respects_direction(self, one_way_pair):
        assert one_way_pair.path_metrics([0, 1, 2]) == (3, 11)
        with pytest.raises(InvalidGraphError):
            one_way_pair.path_metrics([1, 0])

    def test_underlying_undirected(self, one_way_pair):
        undirected = one_way_pair.underlying_undirected()
        assert undirected.num_edges == one_way_pair.num_arcs
        assert undirected.is_connected()

    def test_directed_from_undirected_connected(self):
        base = random_connected_network(20, 15, seed=3)
        directed = directed_from_undirected(base, seed=3)
        assert directed.underlying_undirected().is_connected()
        assert directed.num_arcs >= base.num_edges

    def test_directed_from_undirected_deterministic(self):
        base = random_connected_network(12, 8, seed=1)
        a = directed_from_undirected(base, seed=5)
        b = directed_from_undirected(base, seed=5)
        assert list(a.arcs()) == list(b.arcs())


class TestDirectedDijkstra:
    def test_asymmetric_distances(self, one_way_pair):
        forward = directed_constrained_dijkstra(one_way_pair, 0, 1, 100)
        backward = directed_constrained_dijkstra(one_way_pair, 1, 0, 100)
        assert forward.pair() == (1, 9)
        assert backward.pair() == (4, 4)

    def test_budget_switches_route(self, one_way_pair):
        # 0 -> 1 direct costs 9; via 2 costs 2 but weighs 10.
        tight = directed_constrained_dijkstra(one_way_pair, 0, 1, 8)
        assert tight.pair() == (10, 2)

    def test_unreachable(self):
        g = DirectedRoadNetwork(3)
        g.add_arc(0, 1, weight=1, cost=1)
        g.add_arc(2, 1, weight=1, cost=1)  # nothing leaves 1
        result = directed_constrained_dijkstra(g, 0, 2, 100)
        assert not result.feasible

    def test_skyline_search_respects_direction(self, one_way_pair):
        fronts = directed_skyline_search(one_way_pair, 0)
        pairs = sorted((e[0], e[1]) for e in fronts[1])
        assert pairs == [(1, 9), (10, 2)]


class TestDirectedIndex:
    @pytest.mark.parametrize("seed", range(4))
    def test_labels_match_directed_skylines(self, seed):
        base = random_connected_network(25, 18, seed=seed)
        g = directed_from_undirected(base, seed=seed)
        index = DirectedQHLIndex.build(g, num_index_queries=100, seed=seed)
        rng = random.Random(seed)
        checked = 0
        while checked < 15:
            v = rng.randrange(25)
            ancestors = index.tree.ancestors(v)
            if not ancestors:
                continue
            u = rng.choice(ancestors)
            fwd, bwd = index.labels.label(v)[u]
            truth_f = [
                (e[0], e[1]) for e in directed_skyline_search(g, v)[u]
            ]
            truth_b = [
                (e[0], e[1]) for e in directed_skyline_search(g, u)[v]
            ]
            assert [(e[0], e[1]) for e in fwd] == truth_f
            assert [(e[0], e[1]) for e in bwd] == truth_b
            checked += 1

    @pytest.mark.parametrize("seed", range(4))
    def test_engines_match_ground_truth(self, seed):
        base = random_connected_network(28, 22, seed=100 + seed)
        g = directed_from_undirected(base, seed=seed)
        index = DirectedQHLIndex.build(g, num_index_queries=300, seed=seed)
        engines = [
            index.qhl_engine(),
            index.qhl_engine(use_pruning_conditions=False),
            index.qhl_engine(use_two_pointer=False),
            index.csp2hop_engine(),
        ]
        rng = random.Random(seed)
        for _ in range(50):
            s, t = rng.randrange(28), rng.randrange(28)
            budget = rng.randint(1, 300)
            truth = directed_constrained_dijkstra(g, s, t, budget).pair()
            for engine in engines:
                assert engine.query(s, t, budget).pair() == truth, (
                    engine.name, s, t, budget
                )

    def test_one_way_asymmetry_through_index(self, one_way_pair):
        index = DirectedQHLIndex.build(
            one_way_pair, num_index_queries=50, seed=0
        )
        assert index.query(0, 1, 100).pair() == (1, 9)
        assert index.query(1, 0, 100).pair() == (4, 4)
        assert index.query(0, 1, 8).pair() == (10, 2)

    @pytest.mark.parametrize("seed", range(2))
    def test_path_retrieval_respects_arc_directions(self, seed):
        base = random_connected_network(22, 16, seed=seed)
        g = directed_from_undirected(base, seed=seed)
        index = DirectedQHLIndex.build(
            g, num_index_queries=150, store_paths=True, seed=seed
        )
        engines = [index.qhl_engine(), index.csp2hop_engine()]
        rng = random.Random(seed)
        for _ in range(40):
            s, t = rng.randrange(22), rng.randrange(22)
            budget = rng.randint(1, 300)
            for engine in engines:
                result = engine.query(s, t, budget, want_path=True)
                if result.feasible and s != t:
                    assert result.path[0] == s and result.path[-1] == t
                    # path_metrics only accepts arcs in travel direction.
                    assert g.path_metrics(result.path) == result.pair()

    def test_infeasible_direction(self):
        g = DirectedRoadNetwork(3)
        g.add_arc(0, 1, weight=1, cost=1)
        g.add_arc(1, 2, weight=1, cost=1)
        g.add_arc(2, 0, weight=1, cost=1)
        # Strongly connected ring: 2 -> 1 must go the long way.
        index = DirectedQHLIndex.build(g, num_index_queries=20, seed=0)
        assert index.query(2, 1, 100).pair() == (2, 2)
        assert not index.query(2, 1, 1).feasible
