"""Docstring examples must stay runnable."""

import doctest

import pytest

import repro.graph.network
import repro.instrument.timing
import repro.skyline.entries

MODULES = [
    repro.graph.network,
    repro.instrument.timing,
    repro.skyline.entries,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_module_doctests(module):
    failures, _tried = doctest.testmod(module)
    assert failures == 0
