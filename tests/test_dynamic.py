"""Tests for incremental edge-metric updates (repro.dynamic)."""

import random

import pytest

from repro.baselines import constrained_dijkstra
from repro.core import QHLIndex, random_index_queries
from repro.dynamic import DynamicQHLIndex
from repro.exceptions import InvalidGraphError
from repro.graph import RoadNetwork, random_connected_network


@pytest.fixture()
def dyn():
    g = random_connected_network(25, 20, seed=8)
    queries = random_index_queries(g, 200, seed=8)
    return g, queries, DynamicQHLIndex.build(
        g, index_queries=queries, seed=0
    )


class TestUpdateMechanics:
    def test_out_of_range_edge_rejected(self, dyn):
        _g, _q, index = dyn
        with pytest.raises(InvalidGraphError):
            index.update_edge(10_000, weight=5)

    def test_nonpositive_metric_rejected(self, dyn):
        _g, _q, index = dyn
        with pytest.raises(InvalidGraphError):
            index.update_edge(0, weight=0)

    def test_noop_update_changes_nothing(self, dyn):
        g, _q, index = dyn
        _u, _v, w, c = list(g.edges())[3]
        report = index.update_edge(3, weight=w, cost=c)
        assert report.shortcuts_changed == 0
        assert report.labels_changed == 0
        assert not report.pruning_rebuilt

    def test_report_fields(self, dyn):
        _g, _q, index = dyn
        report = index.update_edge(0, weight=999)
        assert report.seconds > 0
        assert report.shortcuts_checked >= report.shortcuts_changed

    def test_network_edges_reflect_update(self, dyn):
        _g, _q, index = dyn
        index.update_edge(5, weight=123, cost=77)
        assert index.network_edges()[5][2:] == (123, 77)


class TestEquivalenceWithRebuild:
    @pytest.mark.parametrize("seed", range(3))
    def test_labels_match_fresh_build_after_updates(self, seed):
        g = random_connected_network(22, 18, seed=seed)
        queries = random_index_queries(g, 150, seed=seed)
        dyn = DynamicQHLIndex.build(g, index_queries=queries, seed=0)
        rng = random.Random(seed)
        for _ in range(3):
            dyn.update_edge(
                rng.randrange(g.num_edges),
                weight=rng.randint(1, 25),
                cost=rng.randint(1, 25),
            )
        fresh_net = RoadNetwork.from_edges(22, dyn.network_edges())
        fresh = QHLIndex.build(fresh_net, index_queries=queries, seed=0)
        for v, u, entries in fresh.labels.items():
            got = dyn.index.labels.get(v, u)
            assert [(e[0], e[1]) for e in got] == [
                (e[0], e[1]) for e in entries
            ]

    @pytest.mark.parametrize("seed", range(3))
    def test_queries_match_ground_truth_after_updates(self, seed):
        g = random_connected_network(25, 20, seed=100 + seed)
        dyn = DynamicQHLIndex.build(g, num_index_queries=150, seed=0)
        rng = random.Random(seed)
        for _ in range(4):
            dyn.update_edge(
                rng.randrange(g.num_edges), weight=rng.randint(1, 30)
            )
        current = RoadNetwork.from_edges(25, dyn.network_edges())
        for _ in range(40):
            s, t = rng.randrange(25), rng.randrange(25)
            budget = rng.randint(1, 300)
            want = constrained_dijkstra(current, s, t, budget,
                                        want_path=False)
            assert dyn.query(s, t, budget).pair() == want.pair()

    def test_update_changes_answers_when_it_should(self):
        # A two-route diamond: raising the fast route's weight flips
        # the optimum.
        g = RoadNetwork(4)
        g.add_edge(0, 1, weight=1, cost=5)   # edge 0
        g.add_edge(1, 3, weight=1, cost=5)   # edge 1
        g.add_edge(0, 2, weight=5, cost=1)   # edge 2
        g.add_edge(2, 3, weight=5, cost=1)   # edge 3
        dyn = DynamicQHLIndex.build(g, num_index_queries=30, seed=0)
        assert dyn.query(0, 3, 100).pair() == (2, 10)
        dyn.update_edge(0, weight=100)
        assert dyn.query(0, 3, 100).pair() == (10, 2)
        dyn.update_edge(0, weight=1)
        assert dyn.query(0, 3, 100).pair() == (2, 10)

    def test_path_retrieval_after_update(self, dyn):
        g, _q, index = dyn
        index.update_edge(2, cost=99)
        current = RoadNetwork.from_edges(25, index.network_edges())
        result = index.query(0, 24, 10_000, want_path=True)
        if result.feasible:
            assert current.path_metrics(result.path) == result.pair()

    def test_locality_most_labels_untouched(self):
        g = random_connected_network(40, 30, seed=77)
        dyn = DynamicQHLIndex.build(g, num_index_queries=100, seed=0)
        report = dyn.update_edge(0, weight=9999)
        total = dyn.index.labels.num_sets()
        # The sweep must not have recomputed everything.
        assert report.labels_checked < total
