"""Every example script must run to completion.

Examples are executable documentation; they assert their own claims
(cross-checks against ground truth), so a clean exit is a real test.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples"
)
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_every_example_is_covered():
    # If a new example appears, this list (and the README table) must
    # acknowledge it.
    assert EXAMPLES == [
        "congestion_detour.py",
        "engine_faceoff.py",
        "flight_recorder.py",
        "live_traffic.py",
        "multi_constraint.py",
        "one_way_streets.py",
        "quickstart.py",
        "rush_hour_replay.py",
        "supervised_batch.py",
        "toll_budget_routing.py",
        "trace_query.py",
    ]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
