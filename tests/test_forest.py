"""Tests for forest hop labeling (repro.forest) and the label-derived
skyline utility it relies on."""

import random

import pytest

from repro.baselines import constrained_dijkstra, skyline_between
from repro.core import QHLIndex
from repro.forest import ForestQHLIndex
from repro.graph import grid_network, random_connected_network
from repro.labeling.derive import skyline_between_via_labels
from repro.skyline import path_of_pairs


class TestSkylineViaLabels:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_ground_truth(self, seed):
        g = random_connected_network(25, 20, seed=seed)
        index = QHLIndex.build(g, num_index_queries=50, seed=seed)
        rng = random.Random(seed)
        for _ in range(20):
            s, t = rng.randrange(25), rng.randrange(25)
            derived = skyline_between_via_labels(
                index.tree, index.labels, index.lca, s, t
            )
            truth = skyline_between(g, s, t)
            assert path_of_pairs(derived) == path_of_pairs(truth), (s, t)

    def test_same_vertex(self, small_grid_index):
        derived = skyline_between_via_labels(
            small_grid_index.tree,
            small_grid_index.labels,
            small_grid_index.lca,
            5, 5,
        )
        assert path_of_pairs(derived) == [(0, 0)]


class TestForestIndex:
    @pytest.mark.parametrize("num_parts", [2, 4, 6])
    def test_exact_on_random_networks(self, num_parts):
        g = random_connected_network(35, 30, seed=num_parts)
        forest = ForestQHLIndex(g, num_parts=num_parts, seed=num_parts)
        rng = random.Random(num_parts)
        for _ in range(35):
            s, t = rng.randrange(35), rng.randrange(35)
            budget = rng.randint(1, 300)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            assert forest.query(s, t, budget).pair() == want.pair(), (
                s, t, budget
            )

    def test_exact_on_grid(self):
        g = grid_network(8, 8, seed=4)
        forest = ForestQHLIndex(g, num_parts=4, seed=4)
        rng = random.Random(4)
        for _ in range(30):
            s, t = rng.randrange(64), rng.randrange(64)
            budget = rng.randint(10, 400)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            assert forest.query(s, t, budget).pair() == want.pair()

    def test_single_partition_degenerates_to_labels(self):
        g = random_connected_network(20, 15, seed=6)
        forest = ForestQHLIndex(g, num_parts=1, seed=6)
        rng = random.Random(6)
        for _ in range(20):
            s, t = rng.randrange(20), rng.randrange(20)
            budget = rng.randint(1, 250)
            want = constrained_dijkstra(g, s, t, budget, want_path=False)
            assert forest.query(s, t, budget).pair() == want.pair()

    def test_source_equals_target(self):
        g = random_connected_network(15, 10, seed=7)
        forest = ForestQHLIndex(g, num_parts=3, seed=7)
        assert forest.query(4, 4, 0).pair() == (0, 0)

    def test_infeasible_budget(self):
        g = grid_network(5, 5, seed=8)
        forest = ForestQHLIndex(g, num_parts=3, seed=8)
        assert not forest.query(0, 24, 1).feasible

    def test_index_smaller_than_monolithic(self):
        """The future-work premise: partitioning shrinks the index."""
        g = grid_network(14, 14, seed=10)
        mono = QHLIndex.build(
            g, num_index_queries=400, store_paths=False, seed=10
        )
        forest = ForestQHLIndex(g, num_parts=8, seed=10)
        mono_size = mono.labels.size_bytes() + mono.pruning.size_bytes()
        assert forest.size_bytes() < mono_size

    def test_build_faster_than_monolithic(self):
        g = grid_network(14, 14, seed=11)
        import time

        started = time.perf_counter()
        QHLIndex.build(g, num_index_queries=400, store_paths=False, seed=11)
        mono_seconds = time.perf_counter() - started
        forest = ForestQHLIndex(g, num_parts=8, seed=11)
        assert forest.build_seconds < mono_seconds

    def test_regions_are_connected_partitions(self):
        g = grid_network(10, 10, seed=12)
        forest = ForestQHLIndex(g, num_parts=5, seed=12)
        seen = set()
        for region in forest.regions.values():
            assert region.subgraph.is_connected()
            assert not seen.intersection(region.vertices)
            seen.update(region.vertices)
        assert seen == set(range(100))
