"""Unit tests for instrumentation helpers."""

import time

from repro.instrument import (
    COLUMNS,
    Timer,
    WorkloadReport,
    format_bytes,
    format_seconds,
    run_workload,
)
from repro.observability.metrics import Histogram


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.01

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.seconds
        with timer:
            time.sleep(0.005)
        assert timer.seconds >= 0.005
        assert timer.seconds != first or first == 0


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kilobytes(self):
        assert format_bytes(1536) == "1.5 KB"

    def test_megabytes(self):
        assert format_bytes(3 * 1024 * 1024) == "3.0 MB"

    def test_gigabytes(self):
        assert format_bytes(5 * 1024**3) == "5.0 GB"

    def test_huge_stays_gb(self):
        assert format_bytes(5000 * 1024**3).endswith("GB")


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(0.0000042) == "4.2 us"

    def test_milliseconds(self):
        assert format_seconds(0.0042) == "4.2 ms"

    def test_seconds(self):
        assert format_seconds(4.2) == "4.20 s"


def _report(num_queries=4, total_seconds=0.004, latency=None):
    return WorkloadReport(
        engine="QHL",
        workload="Q1",
        num_queries=num_queries,
        total_seconds=total_seconds,
        avg_hoplinks=2.5,
        avg_concatenations=7.0,
        avg_label_lookups=3.0,
        feasible=num_queries,
        latency=latency,
    )


class TestWorkloadReport:
    def test_header_and_row_share_the_column_spec(self):
        header = WorkloadReport.header()
        row = _report().row()
        for column in COLUMNS:
            assert column.title in header
        # Same spec, same geometry: cells line up under their titles.
        assert len(header) == len(row)

    def test_row_contains_percentile_columns(self):
        latency = Histogram("lat")
        for value in (0.001, 0.002, 0.010):
            latency.observe(value)
        report = _report(num_queries=3, total_seconds=0.013, latency=latency)
        header, row = WorkloadReport.header(), report.row()
        assert "p50" in header and "p95" in header and "p99" in header
        assert report.p50_ms > 0
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert f"{report.p99_ms:.3f} ms" in row

    def test_empty_workload_is_guarded(self):
        report = _report(num_queries=0, total_seconds=0.0)
        assert report.avg_ms == 0.0
        assert report.p50_ms == report.p99_ms == 0.0
        report.row()  # must not raise

    def test_missing_latency_histogram_is_guarded(self):
        report = _report(latency=None)
        assert report.p95_ms == 0.0

    def test_run_workload_fills_latency_histogram(self, small_grid_index):
        from repro.types import CSPQuery

        engine = small_grid_index.qhl_engine()
        queries = [
            CSPQuery(0, 63, 10_000),
            CSPQuery(1, 62, 10_000),
            CSPQuery(2, 61, 10_000),
        ]
        report = run_workload(engine, queries, "Q1")
        assert report.num_queries == 3
        assert report.latency.count == 3
        assert report.latency.labels == {"engine": "QHL", "workload": "Q1"}
        assert report.p50_ms > 0


class _FlakyEngine:
    """Answers via a real engine but raises on selected query indices."""

    name = "flaky"

    def __init__(self, inner, fail_on):
        self.inner = inner
        self.fail_on = set(fail_on)
        self.calls = 0

    def query(self, source, target, budget, **kwargs):
        from repro.exceptions import QueryError

        self.calls += 1
        if self.calls - 1 in self.fail_on:
            raise QueryError(f"engine tripped on call {self.calls - 1}")
        return self.inner.query(source, target, budget, **kwargs)


class TestWorkloadFailures:
    def _queries(self, n=4):
        from repro.types import CSPQuery

        return [CSPQuery(i, 63 - i, 10_000) for i in range(n)]

    def test_failing_queries_become_rows_not_crashes(
        self, small_grid_index
    ):
        engine = _FlakyEngine(small_grid_index.qhl_engine(), fail_on={1, 3})
        report = run_workload(engine, self._queries(), "flaky")
        assert report.num_queries == 4
        assert report.failed == 2
        assert report.feasible == 2
        assert [f.index for f in report.failures] == [1, 3]
        assert report.failures[0].error == "QueryError"
        assert "tripped" in report.failures[0].message
        assert report.row()  # the fail column renders

    def test_failures_are_counted_in_the_registry(self, small_grid_index):
        from repro.observability.metrics import (
            MetricsRegistry,
            use_registry,
        )

        engine = _FlakyEngine(small_grid_index.qhl_engine(), fail_on={0})
        registry = MetricsRegistry()
        with use_registry(registry):
            run_workload(engine, self._queries(2), "flaky")
        metric = registry.get(
            "qhl_workload_failures_total",
            {"engine": "flaky", "workload": "flaky",
             "error": "QueryError"},
        )
        assert metric is not None and metric.value == 1

    def test_per_query_deadline_failure_is_recorded(self, small_grid_index):
        # A 0 ms budget expires at the first cooperative checkpoint of
        # every query: all rows fail, none crash the harness.
        engine = small_grid_index.qhl_engine()
        report = run_workload(
            engine, self._queries(3), "deadline", deadline_ms=0
        )
        assert report.failed == 3
        assert all(
            f.error == "DeadlineExceededError" for f in report.failures
        )

    def test_batch_deadline_skips_the_remainder(self, small_grid_index):
        # An already-expired batch budget: the first query fails on its
        # deadline and the rest are never attempted.
        engine = small_grid_index.qhl_engine()
        report = run_workload(
            engine, self._queries(5), "batch", batch_deadline_ms=0
        )
        assert report.num_queries + report.skipped == 5
        assert report.skipped >= 4


class TestWorkloadFlightJoin:
    """Failure rows are greppable back to their flight records."""

    def _queries(self, n=4):
        from repro.types import CSPQuery

        return [CSPQuery(i, 63 - i, 10_000) for i in range(n)]

    def test_sequential_failure_rows_point_at_flight_records(
        self, small_grid_index
    ):
        from repro.observability.flight import (
            FlightRecorder,
            use_flight_recorder,
        )

        engine = _FlakyEngine(small_grid_index.qhl_engine(), fail_on={2})
        recorder = FlightRecorder()
        with use_flight_recorder(recorder):
            report = run_workload(engine, self._queries(), "flaky")
        failure = report.failures[0]
        assert failure.flight_seq is not None
        by_seq = {r.seq: r for r in recorder.records()}
        entry = by_seq[failure.flight_seq]
        assert entry.outcome == failure.error == "QueryError"
        assert (entry.source, entry.target) == (2, 61)

    def test_batched_failure_rows_carry_trace_and_flight(
        self, small_grid_index
    ):
        from repro.observability.flight import (
            FlightRecorder,
            use_flight_recorder,
        )
        from repro.types import CSPQuery

        queries = self._queries(3) + [CSPQuery(0, 10_000, 5.0)]
        recorder = FlightRecorder()
        with use_flight_recorder(recorder):
            report = run_workload(
                small_grid_index.qhl_engine(), queries, "batched",
                batch=True,
            )
        assert report.failed == 1
        failure = report.failures[0]
        assert failure.trace_id is not None
        assert failure.flight_seq is not None
        by_seq = {r.seq: r for r in recorder.records()}
        assert by_seq[failure.flight_seq].trace_id == failure.trace_id

    def test_no_recorder_means_no_pointers(self, small_grid_index):
        engine = _FlakyEngine(small_grid_index.qhl_engine(), fail_on={0})
        report = run_workload(engine, self._queries(2), "flaky")
        failure = report.failures[0]
        assert failure.trace_id is None
        assert failure.flight_seq is None

    def test_service_records_are_reused_not_duplicated(
        self, small_grid_index, service_network=None
    ):
        from repro.service import QueryService
        from repro.types import CSPQuery

        service = QueryService(index=small_grid_index)
        queries = [CSPQuery(0, 63, 10_000), CSPQuery(0, 10_000, 5.0)]
        report = run_workload(service, queries, "svc")
        assert report.failed == 1
        # One flight record per query — the harness reused the
        # service's own failure record instead of writing a second.
        assert service.flight.total == 2
        failure = report.failures[0]
        assert failure.flight_seq == service.flight.records()[-1].seq
        assert failure.trace_id is not None
