"""Unit tests for instrumentation helpers."""

import time

from repro.instrument import (
    COLUMNS,
    Timer,
    WorkloadReport,
    format_bytes,
    format_seconds,
    run_workload,
)
from repro.observability.metrics import Histogram


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.01

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.seconds
        with timer:
            time.sleep(0.005)
        assert timer.seconds >= 0.005
        assert timer.seconds != first or first == 0


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kilobytes(self):
        assert format_bytes(1536) == "1.5 KB"

    def test_megabytes(self):
        assert format_bytes(3 * 1024 * 1024) == "3.0 MB"

    def test_gigabytes(self):
        assert format_bytes(5 * 1024**3) == "5.0 GB"

    def test_huge_stays_gb(self):
        assert format_bytes(5000 * 1024**3).endswith("GB")


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(0.0000042) == "4.2 us"

    def test_milliseconds(self):
        assert format_seconds(0.0042) == "4.2 ms"

    def test_seconds(self):
        assert format_seconds(4.2) == "4.20 s"


def _report(num_queries=4, total_seconds=0.004, latency=None):
    return WorkloadReport(
        engine="QHL",
        workload="Q1",
        num_queries=num_queries,
        total_seconds=total_seconds,
        avg_hoplinks=2.5,
        avg_concatenations=7.0,
        avg_label_lookups=3.0,
        feasible=num_queries,
        latency=latency,
    )


class TestWorkloadReport:
    def test_header_and_row_share_the_column_spec(self):
        header = WorkloadReport.header()
        row = _report().row()
        for column in COLUMNS:
            assert column.title in header
        # Same spec, same geometry: cells line up under their titles.
        assert len(header) == len(row)

    def test_row_contains_percentile_columns(self):
        latency = Histogram("lat")
        for value in (0.001, 0.002, 0.010):
            latency.observe(value)
        report = _report(num_queries=3, total_seconds=0.013, latency=latency)
        header, row = WorkloadReport.header(), report.row()
        assert "p50" in header and "p95" in header and "p99" in header
        assert report.p50_ms > 0
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert f"{report.p99_ms:.3f} ms" in row

    def test_empty_workload_is_guarded(self):
        report = _report(num_queries=0, total_seconds=0.0)
        assert report.avg_ms == 0.0
        assert report.p50_ms == report.p99_ms == 0.0
        report.row()  # must not raise

    def test_missing_latency_histogram_is_guarded(self):
        report = _report(latency=None)
        assert report.p95_ms == 0.0

    def test_run_workload_fills_latency_histogram(self, small_grid_index):
        from repro.types import CSPQuery

        engine = small_grid_index.qhl_engine()
        queries = [
            CSPQuery(0, 63, 10_000),
            CSPQuery(1, 62, 10_000),
            CSPQuery(2, 61, 10_000),
        ]
        report = run_workload(engine, queries, "Q1")
        assert report.num_queries == 3
        assert report.latency.count == 3
        assert report.latency.labels == {"engine": "QHL", "workload": "Q1"}
        assert report.p50_ms > 0
