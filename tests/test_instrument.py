"""Unit tests for instrumentation helpers."""

import time

from repro.instrument import Timer, format_bytes, format_seconds


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.01

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.seconds
        with timer:
            time.sleep(0.005)
        assert timer.seconds >= 0.005
        assert timer.seconds != first or first == 0


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kilobytes(self):
        assert format_bytes(1536) == "1.5 KB"

    def test_megabytes(self):
        assert format_bytes(3 * 1024 * 1024) == "3.0 MB"

    def test_gigabytes(self):
        assert format_bytes(5 * 1024**3) == "5.0 GB"

    def test_huge_stays_gb(self):
        assert format_bytes(5000 * 1024**3).endswith("GB")


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(0.0000042) == "4.2 us"

    def test_milliseconds(self):
        assert format_seconds(0.0042) == "4.2 ms"

    def test_seconds(self):
        assert format_seconds(4.2) == "4.20 s"
