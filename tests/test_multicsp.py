"""Tests for the multi-constraint CSP extension."""

import random

import pytest

from repro.baselines import constrained_dijkstra
from repro.exceptions import InvalidGraphError
from repro.graph import random_connected_network
from repro.multicsp import (
    MultiCSPIndex,
    MultiMetricNetwork,
    multi_dijkstra_reference,
)


def lifted(seed, extra_metrics=1, n=20, extra_edges=15):
    base = random_connected_network(n, extra_edges, seed=seed)
    rng = random.Random(seed)
    extras = [
        [rng.randint(1, 15) for _ in range(base.num_edges)]
        for _ in range(extra_metrics)
    ]
    return base, MultiMetricNetwork.from_network(base, extra_costs=extras)


class TestMultiMetricNetwork:
    def test_from_network_shapes(self):
        base, multi = lifted(seed=1)
        assert multi.num_vertices == base.num_vertices
        assert multi.num_edges == base.num_edges
        assert multi.num_costs == 2

    def test_cost_vector_length_enforced(self):
        net = MultiMetricNetwork(3, num_costs=2)
        with pytest.raises(InvalidGraphError):
            net.add_edge(0, 1, weight=1, costs=(1,))

    def test_positive_metrics_enforced(self):
        net = MultiMetricNetwork(3, num_costs=2)
        with pytest.raises(InvalidGraphError):
            net.add_edge(0, 1, weight=1, costs=(1, 0))

    def test_extra_cost_length_checked(self):
        base = random_connected_network(5, 2, seed=0)
        with pytest.raises(InvalidGraphError):
            MultiMetricNetwork.from_network(base, extra_costs=[[1, 2]])

    def test_path_metrics(self):
        net = MultiMetricNetwork(3, num_costs=2)
        net.add_edge(0, 1, weight=2, costs=(3, 4))
        net.add_edge(1, 2, weight=5, costs=(6, 7))
        assert net.path_metrics([0, 1, 2]) == (7, (9, 11))

    def test_underlying_projection(self):
        _base, multi = lifted(seed=2)
        projected = multi.underlying_network()
        assert projected.num_edges == multi.num_edges


class TestMultiIndex:
    @pytest.mark.parametrize("seed", range(4))
    def test_two_budget_queries_match_reference(self, seed):
        _base, multi = lifted(seed=seed)
        index = MultiCSPIndex.build(multi)
        rng = random.Random(seed)
        for _ in range(40):
            s = rng.randrange(multi.num_vertices)
            t = rng.randrange(multi.num_vertices)
            budgets = (rng.randint(1, 250), rng.randint(1, 150))
            want = multi_dijkstra_reference(multi, s, t, budgets)
            assert index.query(s, t, budgets) == want

    def test_three_metrics(self):
        _base, multi = lifted(seed=9, extra_metrics=2, n=14, extra_edges=8)
        index = MultiCSPIndex.build(multi)
        rng = random.Random(9)
        for _ in range(25):
            s = rng.randrange(14)
            t = rng.randrange(14)
            budgets = (
                rng.randint(1, 200),
                rng.randint(1, 120),
                rng.randint(1, 120),
            )
            want = multi_dijkstra_reference(multi, s, t, budgets)
            assert index.query(s, t, budgets) == want

    def test_single_metric_degenerates_to_csp(self):
        base = random_connected_network(18, 12, seed=4)
        index = MultiCSPIndex.build(MultiMetricNetwork.from_network(base))
        rng = random.Random(4)
        for _ in range(30):
            s, t = rng.randrange(18), rng.randrange(18)
            budget = rng.randint(1, 250)
            single = constrained_dijkstra(base, s, t, budget, want_path=False)
            got = index.query(s, t, (budget,))
            if single.feasible:
                assert got == (single.weight, (single.cost,))
            else:
                assert got is None

    def test_budget_count_validated(self):
        _base, multi = lifted(seed=5)
        index = MultiCSPIndex.build(multi)
        with pytest.raises(ValueError):
            index.query(0, 1, (10,))

    def test_source_equals_target(self):
        _base, multi = lifted(seed=6)
        index = MultiCSPIndex.build(multi)
        assert index.query(3, 3, (0, 0)) == (0, (0, 0))

    def test_full_bag_variant_agrees(self):
        _base, multi = lifted(seed=7)
        index = MultiCSPIndex.build(multi)
        small = index.engine(use_small_separators=True)
        full = index.engine(use_small_separators=False)
        rng = random.Random(7)
        for _ in range(25):
            s = rng.randrange(multi.num_vertices)
            t = rng.randrange(multi.num_vertices)
            budgets = (rng.randint(1, 250), rng.randint(1, 150))
            assert small.query(s, t, budgets) == full.query(s, t, budgets)

    def test_tightening_one_budget_never_improves_weight(self):
        _base, multi = lifted(seed=8)
        index = MultiCSPIndex.build(multi)
        rng = random.Random(8)
        for _ in range(20):
            s = rng.randrange(multi.num_vertices)
            t = rng.randrange(multi.num_vertices)
            loose = index.query(s, t, (300, 300))
            tight = index.query(s, t, (300, 60))
            if tight is not None:
                assert loose is not None
                assert tight[0] >= loose[0]
