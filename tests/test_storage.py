"""Unit tests for index serialisation."""

import pickle

import pytest

from repro.core import QHLIndex
from repro.datasets import paper_figure1_network, v
from repro.exceptions import SerializationError
from repro.storage import load_index, save_index


@pytest.fixture(scope="module")
def index(paper_network):
    return QHLIndex.build(paper_network, num_index_queries=150, seed=2)


class TestRoundtrip:
    def test_save_returns_size(self, index, tmp_path):
        size = save_index(index, str(tmp_path / "x.idx"))
        assert size > 0

    def test_answers_survive_roundtrip(self, index, tmp_path):
        path = str(tmp_path / "x.idx")
        save_index(index, path)
        loaded = load_index(path)
        for budget in (12, 13, 18, 100):
            assert (
                loaded.query(v(8), v(4), budget).pair()
                == index.query(v(8), v(4), budget).pair()
            )

    def test_path_retrieval_survives_roundtrip(self, index, tmp_path):
        path = str(tmp_path / "x.idx")
        save_index(index, path)
        loaded = load_index(path)
        result = loaded.query(v(8), v(4), 13, want_path=True)
        assert result.path == [v(8), v(2), v(9), v(10), v(5), v(4)]

    def test_shortcuts_dropped_by_default(self, index, tmp_path):
        path = str(tmp_path / "x.idx")
        save_index(index, path)
        assert load_index(path).tree.shortcuts == {}
        # ... but the in-memory index keeps its shortcuts.
        assert index.tree.shortcuts

    def test_keep_shortcuts_flag(self, index, tmp_path):
        path = str(tmp_path / "x.idx")
        save_index(index, path, keep_shortcuts=True)
        assert load_index(path).tree.shortcuts

    def test_deep_provenance_roundtrips(self, tmp_path):
        # A long path graph produces provenance trees hundreds deep.
        from repro.graph import RoadNetwork

        n = 300
        g = RoadNetwork(n)
        for i in range(n - 1):
            g.add_edge(i, i + 1, weight=1, cost=1)
        deep = QHLIndex.build(g, num_index_queries=10, seed=0)
        path = str(tmp_path / "deep.idx")
        save_index(deep, path)
        loaded = load_index(path)
        result = loaded.query(0, n - 1, n, want_path=True)
        assert result.path == list(range(n))


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_index(str(tmp_path / "nope.idx"))

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.idx"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(SerializationError):
            load_index(str(path))

    def test_foreign_pickle(self, tmp_path):
        path = tmp_path / "foreign.idx"
        path.write_bytes(pickle.dumps({"hello": "world"}))
        with pytest.raises(SerializationError):
            load_index(str(path))

    def test_wrong_version(self, index, tmp_path):
        import repro.storage.serialize as ser

        path = str(tmp_path / "x.idx")
        save_index(index, path)
        payload = pickle.loads(open(path, "rb").read())
        payload["version"] = 999
        with open(path, "wb") as f:
            pickle.dump(payload, f)
        with pytest.raises(SerializationError):
            load_index(path)

    def test_payload_without_index(self, tmp_path):
        from repro.storage.serialize import FORMAT_VERSION, MAGIC

        path = tmp_path / "x.idx"
        path.write_bytes(
            pickle.dumps(
                {"magic": MAGIC, "version": FORMAT_VERSION, "index": 42}
            )
        )
        with pytest.raises(SerializationError):
            load_index(str(path))
