"""Unit tests for the shared query/result types."""

import pytest

from repro.exceptions import QueryError
from repro.types import CSPQuery, QueryResult, QueryStats


class TestCSPQuery:
    def test_fields(self):
        q = CSPQuery(1, 2, 10.5)
        assert (q.source, q.target, q.budget) == (1, 2, 10.5)

    def test_validated_passes_good_query(self):
        q = CSPQuery(0, 4, 3)
        assert q.validated(5) is q

    def test_validated_rejects_bad_source(self):
        with pytest.raises(QueryError):
            CSPQuery(-1, 0, 1).validated(5)

    def test_validated_rejects_bad_target(self):
        with pytest.raises(QueryError):
            CSPQuery(0, 5, 1).validated(5)

    def test_validated_rejects_negative_budget(self):
        with pytest.raises(QueryError):
            CSPQuery(0, 1, -0.5).validated(5)

    def test_zero_budget_allowed(self):
        CSPQuery(0, 0, 0).validated(5)


class TestQueryResult:
    def test_feasible_result(self):
        r = QueryResult(CSPQuery(0, 1, 5), weight=3, cost=4)
        assert r.feasible
        assert r.pair() == (3, 4)

    def test_infeasible_result(self):
        r = QueryResult(CSPQuery(0, 1, 5))
        assert not r.feasible
        assert r.pair() is None

    def test_default_stats_attached(self):
        r = QueryResult(CSPQuery(0, 1, 5))
        assert isinstance(r.stats, QueryStats)
        assert r.stats.concatenations == 0

    def test_stats_are_not_shared_between_results(self):
        a = QueryResult(CSPQuery(0, 1, 5))
        b = QueryResult(CSPQuery(0, 1, 5))
        a.stats.hoplinks = 9
        assert b.stats.hoplinks == 0
