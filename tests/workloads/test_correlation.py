"""Unit tests for the weak-correlation (traffic-signal) variant."""

import pytest

from repro.exceptions import InvalidGraphError
from repro.graph import grid_network
from repro.workloads import signal_vertices, traffic_signal_network


@pytest.fixture(scope="module")
def grid():
    return grid_network(8, 8, seed=2)


class TestSignalVertices:
    def test_top_fraction_count(self, grid):
        signals = signal_vertices(grid, top_fraction=0.25)
        assert len(signals) == round(64 * 0.25)

    def test_top_fraction_picks_highest_degree(self, grid):
        signals = signal_vertices(grid, top_fraction=0.1)
        min_in = min(grid.degree(v) for v in signals)
        max_out = max(
            grid.degree(v) for v in grid.vertices() if v not in signals
        )
        assert min_in >= max_out - 1  # ties may split either way

    def test_degree_threshold(self, grid):
        signals = signal_vertices(grid, degree_threshold=5)
        assert signals == {
            v for v in grid.vertices() if grid.degree(v) >= 5
        }

    def test_both_selectors_rejected(self, grid):
        with pytest.raises(InvalidGraphError):
            signal_vertices(grid, degree_threshold=4, top_fraction=0.5)

    def test_neither_selector_rejected(self, grid):
        with pytest.raises(InvalidGraphError):
            signal_vertices(grid)

    def test_bad_fraction_rejected(self, grid):
        with pytest.raises(InvalidGraphError):
            signal_vertices(grid, top_fraction=0)
        with pytest.raises(InvalidGraphError):
            signal_vertices(grid, top_fraction=1.5)


class TestTrafficSignalNetwork:
    def test_costs_unchanged(self, grid):
        weak, _signals = traffic_signal_network(grid)
        assert [c for *_rest, c in weak.edges()] == [
            c for *_rest, c in grid.edges()
        ]

    def test_weights_binary_scaled(self, grid):
        weak, signals = traffic_signal_network(grid, signal_weight=777)
        for u, v, w, _c in weak.edges():
            if u in signals or v in signals:
                assert w == 777
            else:
                assert w == 1

    def test_structure_preserved(self, grid):
        weak, _signals = traffic_signal_network(grid)
        assert weak.num_vertices == grid.num_vertices
        assert weak.num_edges == grid.num_edges
        assert weak.is_connected()

    def test_weights_positive_despite_paper_zero(self, grid):
        # Documented substitution: the paper's weight-0 edges break
        # Definition 1; ours stay strictly positive.
        weak, _signals = traffic_signal_network(grid)
        assert all(w > 0 for _u, _v, w, _c in weak.edges())

    def test_degree_threshold_wins_over_default_fraction(self, grid):
        weak, signals = traffic_signal_network(grid, degree_threshold=5)
        assert signals == signal_vertices(grid, degree_threshold=5)

    def test_queries_still_answerable(self, grid):
        from repro.baselines import constrained_dijkstra
        from repro.core import QHLIndex

        weak, _signals = traffic_signal_network(grid)
        index = QHLIndex.build(weak, num_index_queries=100, seed=1)
        import random

        rng = random.Random(4)
        for _ in range(20):
            s, t = rng.randrange(64), rng.randrange(64)
            budget = rng.randint(10, 500)
            want = constrained_dijkstra(weak, s, t, budget, want_path=False)
            assert index.query(s, t, budget).pair() == want.pair()
