"""Unit tests for the query-set file format."""

import pytest

from repro.exceptions import InvalidGraphError
from repro.types import CSPQuery
from repro.workloads import QuerySet, read_query_sets, write_query_sets


def sample_sets():
    q1 = QuerySet(
        "Q1",
        [CSPQuery(0, 5, 12.5), CSPQuery(3, 4, 7)],
        [10.0, 6.0],
    )
    q2 = QuerySet("Q2", [CSPQuery(1, 2, 30)], [25.0])
    return {"Q1": q1, "Q2": q2}


class TestRoundtrip:
    def test_dict_roundtrip(self, tmp_path):
        path = str(tmp_path / "w.queries")
        write_query_sets(sample_sets(), path)
        loaded = read_query_sets(path)
        assert sorted(loaded) == ["Q1", "Q2"]
        assert loaded["Q1"].queries == sample_sets()["Q1"].queries
        assert loaded["Q1"].distances == sample_sets()["Q1"].distances

    def test_list_roundtrip(self, tmp_path):
        path = str(tmp_path / "w.queries")
        write_query_sets(list(sample_sets().values()), path)
        assert sorted(read_query_sets(path)) == ["Q1", "Q2"]

    def test_integer_budgets_stay_clean(self, tmp_path):
        path = str(tmp_path / "w.queries")
        write_query_sets(sample_sets(), path)
        content = open(path).read()
        assert "q 1 2 30 25" in content  # no trailing .0

    def test_generated_sets_roundtrip(self, tmp_path):
        from repro.graph import estimate_diameter, grid_network
        from repro.workloads import generate_distance_sets

        g = grid_network(8, 8, seed=1)
        d_max = estimate_diameter(g)
        sets = generate_distance_sets(g, size=15, d_max=d_max, seed=1)
        path = str(tmp_path / "grid.queries")
        write_query_sets(sets, path)
        loaded = read_query_sets(path)
        for name in sets:
            assert loaded[name].queries == sets[name].queries

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "w.queries")
        write_query_sets(sample_sets(), path)
        assert read_query_sets(path)


class TestErrors:
    def test_count_mismatch_rejected(self, tmp_path):
        (tmp_path / "bad.queries").write_text("qset Q1 5\nq 0 1 2 3\n")
        with pytest.raises(InvalidGraphError):
            read_query_sets(str(tmp_path / "bad.queries"))

    def test_query_before_header_rejected(self, tmp_path):
        (tmp_path / "bad.queries").write_text("q 0 1 2 3\n")
        with pytest.raises(InvalidGraphError):
            read_query_sets(str(tmp_path / "bad.queries"))

    def test_unknown_record_rejected(self, tmp_path):
        (tmp_path / "bad.queries").write_text("qset Q1 0\nx 0 1 2\n")
        with pytest.raises(InvalidGraphError):
            read_query_sets(str(tmp_path / "bad.queries"))

    def test_malformed_query_line_rejected(self, tmp_path):
        (tmp_path / "bad.queries").write_text("qset Q1 1\nq 0 1 2\n")
        with pytest.raises(InvalidGraphError):
            read_query_sets(str(tmp_path / "bad.queries"))
