"""Unit tests for the paper's query-set generation (§5.1)."""

import pytest

from repro.exceptions import QueryError
from repro.graph import estimate_diameter, grid_network, shortest_distance
from repro.workloads import (
    RATIOS,
    distance_band,
    generate_distance_sets,
    generate_ratio_sets,
)


@pytest.fixture(scope="module")
def grid():
    return grid_network(12, 12, seed=21)


@pytest.fixture(scope="module")
def dmax(grid):
    return estimate_diameter(grid)


@pytest.fixture(scope="module")
def sets(grid, dmax):
    return generate_distance_sets(grid, size=40, d_max=dmax, seed=5)


class TestDistanceBand:
    def test_band_edges(self):
        assert distance_band(1, 32) == (1, 2)
        assert distance_band(5, 32) == (16, 32)

    def test_bands_are_contiguous(self):
        for i in range(1, 5):
            assert distance_band(i, 100)[1] == distance_band(i + 1, 100)[0]

    def test_out_of_range_rejected(self):
        with pytest.raises(QueryError):
            distance_band(0, 100)
        with pytest.raises(QueryError):
            distance_band(6, 100)


class TestDistanceSets:
    def test_all_five_sets_filled(self, sets):
        assert sorted(sets) == ["Q1", "Q2", "Q3", "Q4", "Q5"]
        assert all(len(s) == 40 for s in sets.values())

    def test_distances_lie_in_band(self, grid, sets, dmax):
        for i in range(1, 6):
            lo, hi = distance_band(i, dmax)
            qset = sets[f"Q{i}"]
            for query, d in zip(qset.queries, qset.distances):
                assert lo <= d <= hi
                # stored d really is the shortest cost distance
                assert d == shortest_distance(
                    grid, query.source, query.target
                )

    def test_budget_formula(self, sets, dmax):
        for i in range(1, 6):
            c_max = distance_band(i, dmax)[1]
            qset = sets[f"Q{i}"]
            for query, d in zip(qset.queries, qset.distances):
                assert query.budget == pytest.approx(0.5 * c_max + 0.5 * d)

    def test_budget_always_feasible(self, sets):
        # C >= d by construction (C = 0.5 C_max + 0.5 d with C_max >= d).
        for qset in sets.values():
            for query, d in zip(qset.queries, qset.distances):
                assert query.budget >= d

    def test_deterministic(self, grid, dmax):
        a = generate_distance_sets(grid, size=10, d_max=dmax, seed=9)
        b = generate_distance_sets(grid, size=10, d_max=dmax, seed=9)
        assert a["Q3"].queries == b["Q3"].queries

    def test_unfillable_band_raises(self):
        tiny = grid_network(3, 3, seed=0)
        with pytest.raises(QueryError):
            # d_max far above the real diameter makes Q5 unfillable.
            generate_distance_sets(
                tiny, size=10, d_max=10**6, seed=0, max_source_samples=20
            )


class TestRatioSets:
    def test_ratios_match_paper(self):
        assert RATIOS == (0.1, 0.3, 0.5, 0.7, 0.9)

    def test_same_pairs_as_q3(self, sets, dmax):
        ratio_sets = generate_ratio_sets(sets["Q3"], dmax)
        for r, rset in ratio_sets.items():
            for rq, q3q in zip(rset.queries, sets["Q3"].queries):
                assert (rq.source, rq.target) == (q3q.source, q3q.target)

    def test_budget_formula(self, sets, dmax):
        ratio_sets = generate_ratio_sets(sets["Q3"], dmax)
        c_max = dmax / 4
        for r, rset in ratio_sets.items():
            for rq, d in zip(rset.queries, rset.distances):
                assert rq.budget == pytest.approx(r * c_max + (1 - r) * d)

    def test_budgets_increase_with_r(self, sets, dmax):
        ratio_sets = generate_ratio_sets(sets["Q3"], dmax)
        per_query = list(
            zip(*[ratio_sets[r].queries for r in sorted(ratio_sets)])
        )
        for versions in per_query:
            budgets = [q.budget for q in versions]
            assert budgets == sorted(budgets)
