"""Unit tests for Q_index sampling."""

from repro.types import CSPQuery
from repro.workloads import QuerySet, index_queries_from_sets


def make_set(name, pairs):
    queries = [CSPQuery(s, t, 10) for s, t in pairs]
    return QuerySet(name, queries, [1.0] * len(queries))


class TestIndexQueriesFromSets:
    def test_samples_from_pool(self):
        qs = make_set("Q1", [(0, 1), (2, 3), (4, 5)])
        sampled = index_queries_from_sets([qs], count=30, seed=1)
        assert len(sampled) == 30
        assert set(sampled).issubset(set(qs.queries))

    def test_union_of_multiple_sets(self):
        a = make_set("Q1", [(0, 1)])
        b = make_set("Q2", [(2, 3)])
        sampled = index_queries_from_sets([a, b], count=100, seed=2)
        assert set(sampled) == {CSPQuery(0, 1, 10), CSPQuery(2, 3, 10)}

    def test_empty_pool(self):
        assert index_queries_from_sets([], count=10, seed=0) == []

    def test_deterministic(self):
        qs = make_set("Q1", [(0, 1), (2, 3), (4, 5), (6, 7)])
        a = index_queries_from_sets([qs], count=20, seed=9)
        b = index_queries_from_sets([qs], count=20, seed=9)
        assert a == b


class TestQuerySetContainer:
    def test_len_and_iter(self):
        qs = make_set("Q1", [(0, 1), (2, 3)])
        assert len(qs) == 2
        assert list(qs) == qs.queries
